package campaign

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/obs"
	"gnsslna/internal/obs/replay"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/rfpassive"
)

// RunOptions configure a campaign run.
type RunOptions struct {
	// OutDir receives campaign.summary.json, RESULTS.md and the resumable
	// cell checkpoint (created when missing).
	OutDir string
	// Parallel bounds the cells optimized concurrently (<= 1: serial).
	// Cell results are independent and deterministic, so parallelism never
	// changes the summary bytes.
	Parallel int
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// Observer receives solver convergence events, journaled per cell
	// under scope "campaign.<cell id>" (nil: disabled).
	Observer obs.Observer
}

func (o *RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run executes (or resumes) a campaign: the spec's cell grid is expanded,
// cells already recorded in the checkpoint under this exact spec are
// restored, the rest are optimized across the EvalPool, each finished cell
// is checkpointed, and the summary pair is written to OutDir. Because
// every cell is deterministic and checkpointed whole, a run killed at any
// instant resumes to a summary byte-identical to an uninterrupted one.
func Run(spec *Spec, opts RunOptions) (*Summary, error) {
	if spec == nil {
		return nil, fmt.Errorf("campaign: nil spec")
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	cells := spec.Expand()
	digest := spec.Digest()
	ckpt := filepath.Join(opts.OutDir, CheckpointFile)

	// Restore pass: serial, before any work is scheduled. The stage key
	// carries the spec digest, so checkpoints written under an edited spec
	// (different grid, budgets or goals) can never leak into this run.
	results := make([]CellResult, len(cells))
	done := make([]bool, len(cells))
	restored := 0
	for i, c := range cells {
		ok, err := resilience.RestoreCheckpoint(ckpt, cellStage(digest, c.ID), c.Seed, spec.Quick, &results[i])
		if err != nil {
			return nil, err
		}
		if ok {
			done[i] = true
			restored++
		}
	}
	opts.logf("campaign %s: %d cells, %d restored from checkpoint", spec.Name, len(cells), restored)

	// Fan the remaining cells across the pool. SaveCheckpoint is a
	// read-modify-write of the whole file, so a mutex serializes appends.
	var pending []int
	for i := range cells {
		if !done[i] {
			pending = append(pending, i)
		}
	}
	var mu sync.Mutex
	var saveErr error
	optim.NewEvalPool(opts.Parallel).Each(len(pending), func(k int) {
		i := pending[k]
		res := runCell(spec, cells[i], opts.Observer)
		results[i] = res
		mu.Lock()
		defer mu.Unlock()
		if err := resilience.SaveCheckpoint(ckpt, cellStage(digest, res.ID), res.Seed, spec.Quick, res); err != nil && saveErr == nil {
			saveErr = err
		}
		opts.logf("cell %s: %s (evals %d)", res.ID, res.Status, res.Evals)
	})
	if saveErr != nil {
		return nil, saveErr
	}

	s := newSummary(spec, results)
	if err := s.Write(opts.OutDir); err != nil {
		return nil, err
	}
	return s, nil
}

// cellStage is the checkpoint stage key of one cell: campaign-scoped,
// digest-guarded, cell-addressed.
func cellStage(digest, cellID string) string {
	return "campaign." + digest + ".cell." + cellID
}

// substrateFor maps a substrate axis value to its material model.
func substrateFor(name string) (rfpassive.Substrate, error) {
	switch name {
	case "ro4350":
		return rfpassive.RogersRO4350(), nil
	case "fr4":
		return rfpassive.FR4(), nil
	}
	return rfpassive.Substrate{}, fmt.Errorf("substrate %q: want ro4350 or fr4", name)
}

// cellDesigner wires the designer for one cell: device variant, substrate,
// band and requirement axes mapped onto the core spec.
func cellDesigner(spec *Spec, c Cell) (*core.Designer, error) {
	variantSeed, err := deviceSeedFor(c.Device)
	if err != nil {
		return nil, err
	}
	dev := device.Golden()
	if variantSeed > 0 {
		dev, err = device.GoldenVariant(variantSeed)
		if err != nil {
			return nil, err
		}
	}
	sub, err := substrateFor(c.Substrate)
	if err != nil {
		return nil, err
	}
	b := core.NewBuilder(dev)
	b.Sub = sub
	d := core.NewDesigner(b)
	d.Spec = core.Spec{
		FLow: c.Band.FLowHz, FHigh: c.Band.FHighHz,
		NPoints: spec.bandPoints(c.Band),
		NFMaxDB: c.Spec.NFMaxDB, GTMinDB: c.Spec.GTMinDB,
		S11MaxDB: c.Spec.S11MaxDB, S22MaxDB: c.Spec.S22MaxDB,
		StabLow: 0.2e9, StabHigh: 6e9,
		PdcMaxW: c.Spec.PdcMaxW,
	}
	if c.Band.StabHighHz > c.Band.StabLowHz {
		d.Spec.StabLow, d.Spec.StabHigh = c.Band.StabLowHz, c.Band.StabHighHz
	}
	d.Workers = spec.Workers
	return d, nil
}

// runCell optimizes one grid cell. Errors never abort the campaign; they
// become the cell's recorded outcome.
func runCell(spec *Spec, c Cell, observer obs.Observer) CellResult {
	res := CellResult{
		ID: c.ID, Band: c.Band.Name, Spec: c.Spec.Name,
		Substrate: c.Substrate, Device: c.Device,
		Algorithm: c.Algorithm, Seed: c.Seed,
		Status: "ok",
		Gamma:  replay.OptFloat(math.NaN()),
	}
	setMetrics(&res, core.Evaluation{
		WorstNFdB: math.NaN(), MinGTdB: math.NaN(),
		WorstS11dB: math.NaN(), WorstS22dB: math.NaN(),
		StabMargin: math.NaN(), PdcW: math.NaN(),
	})
	d, err := cellDesigner(spec, c)
	if err != nil {
		res.Status, res.Error = "error", err.Error()
		return res
	}
	switch c.Algorithm {
	case "attain":
		runAttainCell(spec, c, d, observer, &res)
	case "nsga2":
		runNSGACell(spec, c, d, observer, &res)
	default:
		// Normalize rejects unknown algorithms; this only guards direct
		// callers that skipped it.
		res.Status, res.Error = "error", fmt.Sprintf("unknown algorithm %q", c.Algorithm)
	}
	return res
}

func runAttainCell(spec *Spec, c Cell, d *core.Designer, observer obs.Observer, res *CellResult) {
	global, polish := spec.attainBudget()
	dr, err := d.Optimize(&optim.AttainOptions{
		Seed: c.Seed, GlobalEvals: global, PolishEvals: polish,
		Workers: spec.Workers, Observer: observer, Scope: "campaign." + c.ID,
	})
	if err != nil {
		res.Status, res.Error = "error", err.Error()
		return
	}
	res.Gamma = replay.OptFloat(dr.Gamma)
	res.Evals = dr.Evals
	res.Design = dr.Snapped.Vector()
	setMetrics(res, dr.SnappedEval)
	res.MeetsSpec = meetsSpec(d.Spec, dr.SnappedEval)
}

func runNSGACell(spec *Spec, c Cell, d *core.Designer, observer obs.Observer, res *CellResult) {
	lo, hi := core.DesignBounds()
	obj := func(x []float64) []float64 {
		ev, err := d.Evaluate(core.DesignFromVector(x))
		if err != nil {
			return []float64{99, 99, 99, 99, 99, 99}
		}
		obj := ev.Objectives()
		if ev.StabMargin <= 0 {
			for i := range obj {
				obj[i] += 10
			}
		}
		return obj
	}
	pop, gens := spec.nsgaBudget()
	nr, err := optim.NSGA2(obj, lo, hi, &optim.NSGA2Options{
		Pop: pop, Generations: gens, Seed: c.Seed,
		Workers: spec.Workers, Observer: observer, Scope: "campaign." + c.ID,
	})
	if err != nil {
		res.Status, res.Error = "error", err.Error()
		return
	}
	res.FrontSize = len(nr.X)
	res.Evals = nr.Evals
	// Representative point: the front member with the lowest noise figure
	// (objective 0, penalties included). Ties break on the first index, so
	// the choice is deterministic.
	best := 0
	for i := 1; i < len(nr.F); i++ {
		if nr.F[i][0] < nr.F[best][0] {
			best = i
		}
	}
	if len(nr.X) == 0 {
		res.Status, res.Error = "error", "empty pareto front"
		return
	}
	x := core.DesignFromVector(nr.X[best])
	ev, err := d.Evaluate(x)
	if err != nil {
		res.Status, res.Error = "error", err.Error()
		return
	}
	res.Design = x.Vector()
	setMetrics(res, ev)
	res.MeetsSpec = meetsSpec(d.Spec, ev)
}

func setMetrics(res *CellResult, ev core.Evaluation) {
	res.WorstNFdB = replay.OptFloat(ev.WorstNFdB)
	res.MinGTdB = replay.OptFloat(ev.MinGTdB)
	res.WorstS11dB = replay.OptFloat(ev.WorstS11dB)
	res.WorstS22dB = replay.OptFloat(ev.WorstS22dB)
	res.StabMargin = replay.OptFloat(ev.StabMargin)
	res.PdcW = replay.OptFloat(ev.PdcW)
}

// meetsSpec grades an evaluation against the cell's requirement axis:
// every goal satisfied and strictly positive stability margin.
func meetsSpec(s core.Spec, ev core.Evaluation) bool {
	if !(ev.WorstNFdB <= s.NFMaxDB && ev.MinGTdB >= s.GTMinDB) {
		return false
	}
	if !(ev.WorstS11dB <= s.S11MaxDB && ev.WorstS22dB <= s.S22MaxDB) {
		return false
	}
	if !(ev.StabMargin > 0) {
		return false
	}
	if s.PdcMaxW > 0 && !(ev.PdcW <= s.PdcMaxW) {
		return false
	}
	return true
}
