package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"gnsslna/internal/obs/replay"
)

// SummaryFile and ResultsFile are the artifact names a campaign run emits
// into its output directory; CheckpointFile is the resumable cell ledger.
const (
	SummaryFile    = "campaign.summary.json"
	ResultsFile    = "RESULTS.md"
	CheckpointFile = "campaign.checkpoint.jsonl"
)

// CellResult is one grid cell's outcome. Every field is plain data with a
// fixed marshaling order and replay.OptFloat for the possibly-absent
// metrics (NaN marshals as null), so a result round-trips bit-identically
// through the stage checkpoint and the summary — the property the resume
// guarantee rests on. It deliberately carries no timestamps.
type CellResult struct {
	ID        string `json:"id"`
	Band      string `json:"band"`
	Spec      string `json:"spec"`
	Substrate string `json:"substrate"`
	Device    string `json:"device"`
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`

	// Status is "ok" or "error"; Error carries the failure text.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// MeetsSpec reports whether the graded design satisfies every goal of
	// the cell's spec axis (stability strictly positive).
	MeetsSpec bool `json:"meets_spec"`
	// Evals counts band evaluations the cell charged.
	Evals int `json:"evals"`
	// Gamma is the attainment factor for attain cells (<= 0: all goals
	// met); NaN/null for other algorithms.
	Gamma replay.OptFloat `json:"gamma"`
	// FrontSize is the non-dominated set size for nsga2 cells (0 otherwise).
	FrontSize int `json:"front_size,omitempty"`

	// Design is the graded design vector (the E24-snapped optimum for
	// attain cells, the front's representative point for nsga2 cells).
	Design []float64 `json:"design,omitempty"`
	// The graded in-band extremes, stability margin and DC power.
	WorstNFdB  replay.OptFloat `json:"worst_nf_db"`
	MinGTdB    replay.OptFloat `json:"min_gt_db"`
	WorstS11dB replay.OptFloat `json:"worst_s11_db"`
	WorstS22dB replay.OptFloat `json:"worst_s22_db"`
	StabMargin replay.OptFloat `json:"stab_margin"`
	PdcW       replay.OptFloat `json:"pdc_w"`
}

// Summary is the machine-readable campaign outcome: the cells in
// expansion order plus the identity needed to diff or resume against it.
// It contains no timestamps or host details — two runs of the same spec
// (including a killed-and-resumed run) must produce byte-identical files.
type Summary struct {
	Version    int    `json:"version"`
	Name       string `json:"name"`
	SpecDigest string `json:"spec_digest"`
	Quick      bool   `json:"quick,omitempty"`
	BaseSeed   int64  `json:"base_seed"`

	// CellCount == len(Cells); OKCount and MeetsSpecCount summarize it.
	CellCount      int `json:"cell_count"`
	OKCount        int `json:"ok_count"`
	MeetsSpecCount int `json:"meets_spec_count"`

	Cells []CellResult `json:"cells"`
}

// newSummary assembles the summary envelope for a normalized spec.
func newSummary(spec *Spec, cells []CellResult) *Summary {
	s := &Summary{
		Version:    1,
		Name:       spec.Name,
		SpecDigest: spec.Digest(),
		Quick:      spec.Quick,
		BaseSeed:   spec.Seed,
		CellCount:  len(cells),
		Cells:      cells,
	}
	for _, c := range cells {
		if c.Status == "ok" {
			s.OKCount++
		}
		if c.MeetsSpec {
			s.MeetsSpecCount++
		}
	}
	return s
}

// LoadSummary reads a campaign.summary.json.
func LoadSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	s := &Summary{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return s, nil
}

// MarshalBytes renders the summary in its canonical on-disk form: indented
// JSON with a trailing newline. Encoding/json field order is declaration
// order and map-free, so the bytes are a pure function of the content.
func (s *Summary) MarshalBytes() ([]byte, error) {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal summary: %w", err)
	}
	return append(raw, '\n'), nil
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, mirroring the checkpoint discipline: a reader (or a kill) sees
// either the previous complete file or the new complete file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// Write emits campaign.summary.json and RESULTS.md into dir, atomically.
func (s *Summary) Write(dir string) error {
	raw, err := s.MarshalBytes()
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, SummaryFile), raw); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ResultsFile), []byte(s.ResultsMarkdown()))
}

// fmtCell renders a metric for the markdown table: "-" when absent.
func fmtCell(v replay.OptFloat) string {
	if v.IsNaN() {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(v))
}

// ResultsMarkdown renders the human-readable campaign report. Like the
// JSON summary it is a pure function of the results (no timestamps), so
// resumed runs regenerate it byte-identically.
func (s *Summary) ResultsMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Campaign %s\n\n", s.Name)
	fmt.Fprintf(&b, "spec digest `%s`", s.SpecDigest)
	if s.Quick {
		b.WriteString(" (quick mode)")
	}
	fmt.Fprintf(&b, " — %d cells, %d ok, %d meet spec\n\n", s.CellCount, s.OKCount, s.MeetsSpecCount)
	b.WriteString("| cell | alg | NFmax [dB] | GTmin [dB] | S11max [dB] | S22max [dB] | stab | Pdc [mW] | gamma | evals | spec |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range s.Cells {
		if c.Status != "ok" {
			fmt.Fprintf(&b, "| %s | %s | error: %s |||||||||\n", c.ID, c.Algorithm, c.Error)
			continue
		}
		meets := "miss"
		if c.MeetsSpec {
			meets = "met"
		}
		pdc := replay.OptFloat(math.NaN())
		if !c.PdcW.IsNaN() {
			pdc = c.PdcW * 1e3
		}
		gamma := fmtCell(c.Gamma)
		if c.Algorithm == "nsga2" {
			gamma = fmt.Sprintf("front %d", c.FrontSize)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %d | %s |\n",
			c.ID, c.Algorithm,
			fmtCell(c.WorstNFdB), fmtCell(c.MinGTdB),
			fmtCell(c.WorstS11dB), fmtCell(c.WorstS22dB),
			fmtCell(c.StabMargin), fmtCell(pdc),
			gamma, c.Evals, meets)
	}
	b.WriteString("\nRegenerate with `campaign run`; compare against another run with `obsreport campaign-diff`.\n")
	return b.String()
}
