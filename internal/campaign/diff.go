package campaign

import (
	"fmt"
	"io"
	"math"
	"strings"

	"gnsslna/internal/obs/replay"
)

// FieldDelta is one changed metric of a cell present in both summaries.
// Values are replay.OptFloat, so an absent metric (NaN) survives JSON and
// two absent values compare equal rather than forever-unequal.
type FieldDelta struct {
	Name string          `json:"name"`
	A    replay.OptFloat `json:"a"`
	B    replay.OptFloat `json:"b"`
}

// CellDelta is one row of a campaign-to-campaign diff: a cell added,
// removed, identical, or changed field by field.
type CellDelta struct {
	ID string `json:"id"`
	// OnlyIn is "a" or "b" for cells present in one summary, "" otherwise.
	OnlyIn string `json:"only_in,omitempty"`
	// Equal reports a cell present in both summaries with no changes.
	Equal bool `json:"equal,omitempty"`
	// Fields lists the changed numeric metrics; Notes the changed
	// non-numeric facts (status, meets_spec, algorithm, evals).
	Fields []FieldDelta `json:"fields,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
}

// DiffResult is the machine-readable campaign comparison.
type DiffResult struct {
	// DigestMatch reports whether the two summaries came from the same
	// spec definition.
	DigestMatch bool `json:"digest_match"`
	// Identical reports a fully equal comparison: same digest, same
	// cells, no deltas.
	Identical bool `json:"identical"`
	// Cells holds one delta per cell of the union, in A's order with B's
	// extra cells appended in B's order.
	Cells []CellDelta `json:"cells"`
}

// eqOpt is NaN-safe equality: two NaNs (absent metrics) are equal.
func eqOpt(a, b replay.OptFloat) bool {
	if a.IsNaN() && b.IsNaN() {
		return true
	}
	return float64(a) == float64(b)
}

// metricFields enumerates the compared numeric metrics of a cell.
func metricFields(c CellResult) []FieldDelta {
	return []FieldDelta{
		{Name: "gamma", A: c.Gamma},
		{Name: "worst_nf_db", A: c.WorstNFdB},
		{Name: "min_gt_db", A: c.MinGTdB},
		{Name: "worst_s11_db", A: c.WorstS11dB},
		{Name: "worst_s22_db", A: c.WorstS22dB},
		{Name: "stab_margin", A: c.StabMargin},
		{Name: "pdc_w", A: c.PdcW},
	}
}

// diffCell compares one cell present in both summaries.
func diffCell(a, b CellResult) CellDelta {
	d := CellDelta{ID: a.ID}
	if a.Status != b.Status {
		d.Notes = append(d.Notes, fmt.Sprintf("status %s -> %s", a.Status, b.Status))
	}
	if a.Error != b.Error {
		d.Notes = append(d.Notes, "error text changed")
	}
	if a.MeetsSpec != b.MeetsSpec {
		d.Notes = append(d.Notes, fmt.Sprintf("meets_spec %v -> %v", a.MeetsSpec, b.MeetsSpec))
	}
	if a.Evals != b.Evals {
		d.Notes = append(d.Notes, fmt.Sprintf("evals %d -> %d", a.Evals, b.Evals))
	}
	if a.FrontSize != b.FrontSize {
		d.Notes = append(d.Notes, fmt.Sprintf("front_size %d -> %d", a.FrontSize, b.FrontSize))
	}
	fa, fb := metricFields(a), metricFields(b)
	for i := range fa {
		if !eqOpt(fa[i].A, fb[i].A) {
			d.Fields = append(d.Fields, FieldDelta{Name: fa[i].Name, A: fa[i].A, B: fb[i].A})
		}
	}
	designChanged := len(a.Design) != len(b.Design)
	for i := 0; !designChanged && i < len(a.Design); i++ {
		av, bv := a.Design[i], b.Design[i]
		designChanged = av != bv && !(math.IsNaN(av) && math.IsNaN(bv))
	}
	if designChanged {
		d.Notes = append(d.Notes, "design vector changed")
	}
	d.Equal = len(d.Fields) == 0 && len(d.Notes) == 0
	return d
}

// Diff compares two campaign summaries cell by cell. Cells are matched by
// ID; cells present in only one summary are reported explicitly, like the
// disjoint-run handling of the journal compare.
func Diff(a, b *Summary) DiffResult {
	res := DiffResult{DigestMatch: a.SpecDigest == b.SpecDigest}
	inB := map[string]CellResult{}
	for _, c := range b.Cells {
		inB[c.ID] = c
	}
	inA := map[string]bool{}
	allEqual := true
	for _, ca := range a.Cells {
		inA[ca.ID] = true
		cb, ok := inB[ca.ID]
		if !ok {
			res.Cells = append(res.Cells, CellDelta{ID: ca.ID, OnlyIn: "a"})
			allEqual = false
			continue
		}
		d := diffCell(ca, cb)
		if !d.Equal {
			allEqual = false
		}
		res.Cells = append(res.Cells, d)
	}
	for _, cb := range b.Cells {
		if !inA[cb.ID] {
			res.Cells = append(res.Cells, CellDelta{ID: cb.ID, OnlyIn: "b"})
			allEqual = false
		}
	}
	res.Identical = allEqual && res.DigestMatch
	return res
}

// fmtOpt renders a metric value, "-" for NaN (absent).
func fmtOpt(v replay.OptFloat) string {
	if v.IsNaN() {
		return "-"
	}
	return fmt.Sprintf("%.6g", float64(v))
}

// WriteDiffText renders a campaign diff as aligned text, mirroring the
// journal compare: a per-cell table, then explicit added/removed listings
// so disjoint campaigns never diff to a silently empty report.
func WriteDiffText(w io.Writer, labelA, labelB string, a, b *Summary) error {
	res := Diff(a, b)
	if _, err := fmt.Fprintf(w, "comparing A=%s (%s) vs B=%s (%s)\n",
		labelA, a.Name, labelB, b.Name); err != nil {
		return err
	}
	if !res.DigestMatch {
		if _, err := fmt.Fprintf(w, "note: spec digests differ (%s vs %s) — the campaigns ran different definitions\n",
			a.SpecDigest, b.SpecDigest); err != nil {
			return err
		}
	}
	changed := 0
	for _, d := range res.Cells {
		if d.OnlyIn != "" || d.Equal {
			continue
		}
		changed++
		if _, err := fmt.Fprintf(w, "cell %s:\n", d.ID); err != nil {
			return err
		}
		for _, n := range d.Notes {
			if _, err := fmt.Fprintf(w, "  %s\n", n); err != nil {
				return err
			}
		}
		for _, f := range d.Fields {
			if _, err := fmt.Fprintf(w, "  %-14s %12s -> %-12s\n", f.Name, fmtOpt(f.A), fmtOpt(f.B)); err != nil {
				return err
			}
		}
	}
	var onlyA, onlyB []string
	for _, d := range res.Cells {
		switch d.OnlyIn {
		case "a":
			onlyA = append(onlyA, d.ID)
		case "b":
			onlyB = append(onlyB, d.ID)
		}
	}
	if len(onlyA) > 0 {
		if _, err := fmt.Fprintf(w, "removed in B (only in A): %s\n", strings.Join(onlyA, ", ")); err != nil {
			return err
		}
	}
	if len(onlyB) > 0 {
		if _, err := fmt.Fprintf(w, "added in B (only in B): %s\n", strings.Join(onlyB, ", ")); err != nil {
			return err
		}
	}
	if len(res.Cells) > 0 && len(onlyA)+len(onlyB) == len(res.Cells) {
		if _, err := fmt.Fprintln(w, "note: the campaigns share no cells — every row is an addition or removal"); err != nil {
			return err
		}
	}
	if res.Identical {
		_, err := fmt.Fprintf(w, "identical: %d cells, no differences\n", len(res.Cells))
		return err
	}
	_, err := fmt.Fprintf(w, "%d cells compared: %d changed, %d removed, %d added\n",
		len(res.Cells), changed, len(onlyA), len(onlyB))
	return err
}
