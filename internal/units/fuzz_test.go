package units

import (
	"errors"
	"math"
	"testing"
)

// FuzzParse drives the engineering-notation parser with arbitrary strings.
// Properties: Parse never panics; every error is one of the three typed
// classes; a successful parse returns a finite value; and re-parsing the
// Format rendering of an in-range value agrees to format precision.
func FuzzParse(f *testing.F) {
	f.Add("2.2nH")
	f.Add("10 pF")
	f.Add("1.575GHz")
	f.Add("-5mA")
	f.Add("50 Ohm")
	f.Add("1e300GHz")
	f.Add("")
	f.Add("µF")
	f.Add("3 furlongs")
	f.Add("0x1p-3V")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			if !errors.Is(err, ErrEmpty) && !errors.Is(err, ErrBadNumber) && !errors.Is(err, ErrUnknownSuffix) {
				t.Fatalf("Parse(%q): untyped error %v", s, err)
			}
			return
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Parse(%q) = %g accepted a non-finite value", s, v)
		}
		// Format/Parse round trip, restricted to the magnitude range the
		// 4-digit prefix renderer represents faithfully.
		av := math.Abs(v)
		if av != 0 && (av < 1e-17 || av > 1e14) {
			return
		}
		r, err := Parse(Format(v, "H"))
		if err != nil {
			t.Fatalf("Parse(Format(%g)) = %q failed: %v", v, Format(v, "H"), err)
		}
		if math.Abs(r-v) > 1e-3*math.Max(1e-300, av) {
			t.Fatalf("round trip %g -> %q -> %g", v, Format(v, "H"), r)
		}
	})
}
