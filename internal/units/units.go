// Package units provides engineering-notation parsing and formatting for
// component values (nH, pF, GHz, ...) and snapping of continuous component
// values to standard E-series (E12/E24/E96) preferred values, as used when
// turning an optimized design into a buildable bill of materials.
package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Typed parse failures, exposed so callers (CLIs, config loaders, the fuzz
// harness) can distinguish user-fixable input classes with errors.Is.
var (
	// ErrEmpty reports an empty (or all-whitespace) value string.
	ErrEmpty = errors.New("units: empty value")
	// ErrBadNumber reports a value whose leading numeric part does not
	// parse; the strconv cause is wrapped alongside it.
	ErrBadNumber = errors.New("units: malformed number")
	// ErrUnknownSuffix reports a suffix that is neither a known SI prefix
	// nor a recognized unit name.
	ErrUnknownSuffix = errors.New("units: unrecognized suffix")
)

// siPrefixes maps metric prefixes to their multipliers.
var siPrefixes = map[string]float64{
	"f": 1e-15,
	"p": 1e-12,
	"n": 1e-9,
	"u": 1e-6,
	"µ": 1e-6,
	"m": 1e-3,
	"":  1,
	"k": 1e3,
	"M": 1e6,
	"G": 1e9,
	"T": 1e12,
}

// prefixLadder is ordered for formatting lookups.
var prefixLadder = []struct {
	mult float64
	name string
}{
	{1e-15, "f"}, {1e-12, "p"}, {1e-9, "n"}, {1e-6, "u"}, {1e-3, "m"},
	{1, ""}, {1e3, "k"}, {1e6, "M"}, {1e9, "G"}, {1e12, "T"},
}

// Parse interprets an engineering-notation value such as "2.2nH", "10 pF",
// "1.575GHz" or "50". The unit suffix (H, F, Hz, Ohm...) is ignored; only the
// SI prefix scales the number.
func Parse(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, ErrEmpty
	}
	// Split the leading numeric part from the suffix.
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			// Guard: 'e'/'E' only counts as part of the number if followed by
			// a digit or sign (exponent), otherwise it starts the suffix.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '-' && n != '+' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	numPart := s[:i]
	suffix := strings.TrimSpace(s[i:])
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: parse %q: %w", ErrBadNumber, s, err)
	}
	if suffix == "" {
		return v, nil
	}
	// Try longest known prefix first ("µ" is multi-byte).
	for p, mult := range siPrefixes {
		if p != "" && strings.HasPrefix(suffix, p) {
			rest := suffix[len(p):]
			if restIsUnit(rest) {
				r := v * mult
				// A finite mantissa can still overflow through the
				// multiplier ("1e300GHz"): reject instead of returning Inf.
				if math.IsInf(r, 0) {
					return 0, fmt.Errorf("%w: parse %q: value out of range", ErrBadNumber, s)
				}
				return r, nil
			}
		}
	}
	if restIsUnit(suffix) {
		return v, nil
	}
	return 0, fmt.Errorf("%w: parse %q: suffix %q", ErrUnknownSuffix, s, suffix)
}

// restIsUnit accepts an (optional) pure unit name after the prefix.
func restIsUnit(s string) bool {
	switch strings.ToLower(s) {
	case "", "h", "f", "hz", "ohm", "ohms", "Ω", "v", "a", "w", "s", "m", "db", "dbm":
		return true
	}
	return false
}

// Format renders v with an SI prefix and the given unit, e.g.
// Format(2.2e-9, "H") == "2.2nH". Zero renders without a prefix.
func Format(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	av := math.Abs(v)
	best := prefixLadder[0]
	for _, p := range prefixLadder {
		if av >= p.mult*0.9995 {
			best = p
		}
	}
	scaled := v / best.mult
	s := strconv.FormatFloat(scaled, 'g', 4, 64)
	return s + best.name + unit
}

// eSeriesBase returns the canonical mantissas of an E-series.
func eSeriesBase(series int) []float64 {
	switch series {
	case 3:
		return []float64{1.0, 2.2, 4.7}
	case 6:
		return []float64{1.0, 1.5, 2.2, 3.3, 4.7, 6.8}
	case 12:
		return []float64{1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2}
	case 24:
		return []float64{
			1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0,
			3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1,
		}
	case 96:
		out := make([]float64, 96)
		for i := range out {
			v := math.Pow(10, float64(i)/96)
			out[i] = math.Round(v*100) / 100
		}
		// Historical anomalies in the standardized E96 table.
		out[21] = 1.65
		return out
	default:
		return nil
	}
}

// SnapE snaps a positive value to the nearest value in the E-series
// (3, 6, 12, 24 or 96). It returns the input unchanged for non-positive
// values or unknown series.
func SnapE(v float64, series int) float64 {
	base := eSeriesBase(series)
	if base == nil || v <= 0 {
		return v
	}
	exp := math.Floor(math.Log10(v))
	best, bestErr := v, math.Inf(1)
	// Examine the decade below, containing, and above to be safe at decade
	// boundaries.
	for d := exp - 1; d <= exp+1; d++ {
		scale := math.Pow(10, d)
		for _, m := range base {
			c := m * scale
			// Relative error keeps the snap symmetric in log space.
			e := math.Abs(math.Log(c / v))
			if e < bestErr {
				best, bestErr = c, e
			}
		}
	}
	return best
}

// SnapE24 snaps to the E24 series, the default for chip inductors and
// capacitors in this project.
func SnapE24(v float64) float64 { return SnapE(v, 24) }
