package units

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"2.2nH", 2.2e-9},
		{"10 pF", 10e-12},
		{"1.575GHz", 1.575e9},
		{"50", 50},
		{"50 Ohm", 50},
		{"3.3V", 3.3},
		{"-5mA", -5e-3},
		{"1e3", 1000},
		{"4.7uH", 4.7e-6},
		{"120kHz", 120e3},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !close(got, tc.want, 1e-12) {
			t.Errorf("Parse(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1.2qZ", "--3"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

// TestParseEdgeCases drives the edge classes through a table asserting the
// typed error (or exact value) each must produce, so callers can rely on
// errors.Is dispatch.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		in      string
		want    float64
		wantErr error
	}{
		// Empty and whitespace-only inputs.
		{in: "", wantErr: ErrEmpty},
		{in: "   ", wantErr: ErrEmpty},
		{in: "\t\n", wantErr: ErrEmpty},
		// Bare numbers: no suffix means no scaling.
		{in: "50", want: 50},
		{in: "0", want: 0},
		{in: "1e3", want: 1000},
		{in: "-0.5", want: -0.5},
		// Negative values with prefixes and units scale normally.
		{in: "-3.3nH", want: -3.3e-9},
		{in: "-5mA", want: -5e-3},
		{in: "-120kHz", want: -120e3},
		// Malformed numeric parts.
		{in: "abc", wantErr: ErrBadNumber},
		{in: "--3", wantErr: ErrBadNumber},
		{in: "nH", wantErr: ErrBadNumber},
		{in: "1.2.3pF", wantErr: ErrBadNumber},
		// Unknown suffixes after a valid number.
		{in: "1.2qZ", wantErr: ErrUnknownSuffix},
		{in: "3 furlongs", wantErr: ErrUnknownSuffix},
		{in: "2.2e", wantErr: ErrUnknownSuffix},
		// Trailing whitespace between number and suffix is tolerated.
		{in: " 10 pF ", want: 10e-12},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if tc.wantErr != nil {
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("Parse(%q) error = %v, want errors.Is(%v)", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !close(got, tc.want, 1e-12) {
			t.Errorf("Parse(%q) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.2e-9, "H", "2.2nH"},
		{10e-12, "F", "10pF"},
		{1.575e9, "Hz", "1.575GHz"},
		{0, "F", "0F"},
		{50, "Ohm", "50Ohm"},
	}
	for _, tc := range cases {
		if got := Format(tc.v, tc.unit); got != tc.want {
			t.Errorf("Format(%g, %q) = %q, want %q", tc.v, tc.unit, got, tc.want)
		}
	}
}

func TestSnapE24Known(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{2.05e-9, 2.0e-9},
		{2.15e-9, 2.2e-9},
		{47.3e-12, 47e-12},
		{9.8, 10}, // decade boundary upward
		{0.97, 1.0},
	}
	for _, tc := range cases {
		if got := SnapE24(tc.in); !close(got, tc.want, 1e-9) {
			t.Errorf("SnapE24(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestSnapEIdempotentProperty(t *testing.T) {
	// Snapping an already snapped value changes nothing, for all series.
	f := func(seedRaw int64) bool {
		seed := seedRaw % 10000
		if seed < 0 {
			seed = -seed
		}
		v := 1e-12 * math.Pow(10, float64(seed%240)/10)
		for _, series := range []int{3, 6, 12, 24, 96} {
			s1 := SnapE(v, series)
			s2 := SnapE(s1, series)
			if !close(s1, s2, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapEBoundedError(t *testing.T) {
	// The relative snap error for E24 must never exceed the half-step of the
	// widest gap in the series (1.3 -> 1.5, ~ +/- 7.5%).
	for v := 1e-9; v < 1e-6; v *= 1.013 {
		s := SnapE24(v)
		relErr := math.Abs(s-v) / v
		if relErr > 0.075 {
			t.Fatalf("SnapE24(%g) = %g, rel err %.3f too large", v, s, relErr)
		}
	}
}

func TestSnapEPassThrough(t *testing.T) {
	if got := SnapE(-3, 24); got != -3 {
		t.Errorf("negative values must pass through, got %g", got)
	}
	if got := SnapE(5, 17); got != 5 {
		t.Errorf("unknown series must pass through, got %g", got)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, v := range []float64{2.2e-9, 47e-12, 1.17645e9, 33, 5.6e-6} {
		s := Format(v, "H")
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(Format(%g)) = %q: %v", v, s, err)
		}
		if !close(got, v, 1e-3) {
			t.Errorf("round trip %g -> %q -> %g", v, s, got)
		}
	}
}
