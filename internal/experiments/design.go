package experiments

import (
	"fmt"
	"math/cmplx"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
	"gnsslna/internal/units"
	"gnsslna/internal/vna"
)

// E5DesignFlow reproduces "Table III": the optimized operating point and
// passive element values, with the attained band objectives against their
// goals, for both the continuous optimum and the E24-snapped build.
func (s *Suite) E5DesignFlow() (Table, error) {
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E5",
		Title:   "optimized operating point and essential passive elements",
		Columns: []string{"quantity", "goal", "continuous", "E24-snapped"},
		Notes: fmt.Sprintf("attainment factor gamma = %.3f (<= 0 means every goal met); %d band evaluations",
			res.Gamma, res.Evals),
	}
	t.AddRow("Vgs [V]", "-", fmt.Sprintf("%.3f", res.Design.Vgs), fmt.Sprintf("%.3f", res.Snapped.Vgs))
	t.AddRow("Vds [V]", "-", fmt.Sprintf("%.2f", res.Design.Vds), fmt.Sprintf("%.2f", res.Snapped.Vds))
	t.AddRow("Ids [mA]", "-", fmt.Sprintf("%.1f", res.Eval.IdsA*1e3), fmt.Sprintf("%.1f", res.SnappedEval.IdsA*1e3))
	t.AddRow("L_in", "-", units.Format(res.Design.LIn, "H"), units.Format(res.Snapped.LIn, "H"))
	t.AddRow("L_degen", "-", units.Format(res.Design.LDegen, "H"), units.Format(res.Snapped.LDegen, "H"))
	t.AddRow("L_out", "-", units.Format(res.Design.LOut, "H"), units.Format(res.Snapped.LOut, "H"))
	t.AddRow("C_out", "-", units.Format(res.Design.COut, "F"), units.Format(res.Snapped.COut, "F"))
	sp := d.Spec
	t.AddRow("NF max [dB]", fmt.Sprintf("<= %.2f", sp.NFMaxDB),
		fmt.Sprintf("%.3f", res.Eval.WorstNFdB), fmt.Sprintf("%.3f", res.SnappedEval.WorstNFdB))
	t.AddRow("GT min [dB]", fmt.Sprintf(">= %.1f", sp.GTMinDB),
		fmt.Sprintf("%.2f", res.Eval.MinGTdB), fmt.Sprintf("%.2f", res.SnappedEval.MinGTdB))
	t.AddRow("S11 max [dB]", fmt.Sprintf("<= %.0f", sp.S11MaxDB),
		fmt.Sprintf("%.2f", res.Eval.WorstS11dB), fmt.Sprintf("%.2f", res.SnappedEval.WorstS11dB))
	t.AddRow("S22 max [dB]", fmt.Sprintf("<= %.0f", sp.S22MaxDB),
		fmt.Sprintf("%.2f", res.Eval.WorstS22dB), fmt.Sprintf("%.2f", res.SnappedEval.WorstS22dB))
	t.AddRow("stab margin", "> 0",
		fmt.Sprintf("%.3f", res.Eval.StabMargin), fmt.Sprintf("%.3f", res.SnappedEval.StabMargin))
	t.AddRow("Pdc [mW]", fmt.Sprintf("<= %.0f", sp.PdcMaxW*1e3),
		fmt.Sprintf("%.0f", res.Eval.PdcW*1e3), fmt.Sprintf("%.0f", res.SnappedEval.PdcW*1e3))
	return t, nil
}

// E6Verification reproduces the final measured-vs-designed figure: the
// snapped design is built on the golden device (the "real" hardware) and
// measured with the synthetic VNA and noise-figure meter, against the
// design predictions computed from the extracted model.
func (s *Suite) E6Verification() (Table, error) {
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	// Prediction: extracted-model amplifier. Hardware: the same design on
	// the golden device.
	predicted, err := d.Builder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	hwBuilder := *d.Builder
	hwBuilder.Dev = s.golden
	hardware, err := hwBuilder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	lo, hi := d.Spec.FLow, d.Spec.FHigh
	freqs := mathx.Linspace(lo-0.05e9, hi+0.05e9, 9)
	v := vna.NewVNA(s.cfg.seed() + 77)
	measured, err := v.Measure(freqs, func(f float64) (twoport.Mat2, error) {
		return hardware.SAt(f, 50)
	})
	if err != nil {
		return Table{}, fmt.Errorf("E6 VNA: %w", err)
	}
	nfMeter := &vna.NFMeter{SigmaDB: 0.05, Seed: s.cfg.seed() + 78}
	nfMeas, err := nfMeter.MeasureNF(freqs, hardware.NoisyAt)
	if err != nil {
		return Table{}, fmt.Errorf("E6 NF meter: %w", err)
	}

	t := Table{
		ID:    "E6",
		Title: "designed vs measured preamplifier (S-parameters and noise figure)",
		Columns: []string{
			"f [GHz]", "S21 dsg [dB]", "S21 meas [dB]",
			"S11 dsg [dB]", "S11 meas [dB]", "NF dsg [dB]", "NF meas [dB]",
		},
		Notes: "dsg: extracted-model prediction; meas: golden-device hardware through " +
			"the synthetic VNA (sigma 0.002) and NF meter (sigma 0.05 dB)",
	}
	for i, f := range freqs {
		pm, err := predicted.MetricsAt(f, 50)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(
			fmt.Sprintf("%.3f", f/1e9),
			fmt.Sprintf("%.2f", pm.GTdB),
			fmt.Sprintf("%.2f", mathx.DB20(absC(measured.S[i][1][0]))),
			fmt.Sprintf("%.1f", pm.S11dB),
			fmt.Sprintf("%.1f", mathx.DB20(absC(measured.S[i][0][0]))),
			fmt.Sprintf("%.3f", pm.NFdB),
			fmt.Sprintf("%.3f", nfMeas[i]),
		)
	}
	return t, nil
}

func absC(v complex128) float64 { return cmplx.Abs(v) }
