package experiments

import (
	"fmt"

	"gnsslna/internal/device"
	"gnsslna/internal/vna"
)

// E8Intermodulation reproduces the third-order intermodulation check: a
// two-tone test at three navigation band centers, with the measured slopes,
// the extrapolated output intercept point, and the closed-form power-series
// cross-check.
func (s *Suite) E8Intermodulation() (Table, error) {
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	bias := device.Bias{Vgs: res.Snapped.Vgs, Vds: res.Snapped.Vds}
	// Tone pairs on a 500 kHz coherence grid near the L5/L2/L1 centers.
	cases := []struct {
		name   string
		center float64
	}{
		{"L5/E5a", 1.1765e9},
		{"L2", 1.2275e9},
		{"L1/E1", 1.5755e9},
	}
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	amp, err := d.Builder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "E8",
		Title: "two-tone third-order intermodulation at the navigation bands",
		Columns: []string{
			"band", "f1 [GHz]", "slope fund", "slope IM3",
			"OIP3 dev meas [dBm]", "OIP3 dev analytic", "OIP3 amp [dBm]",
		},
		Notes: fmt.Sprintf("device columns: two-tone at Vgs=%.3f V, Vds=%.2f V into 50 ohm "+
			"(Goertzel measurement vs gm power series); amp column: quasi-static "+
			"amplifier-level intercept including the matching networks", bias.Vgs, bias.Vds),
	}
	for _, c := range cases {
		cfg := vna.TwoToneConfig{
			F1:         c.center - 0.5e6,
			F2:         c.center + 0.5e6,
			Resolution: 500e3,
		}
		ip3, err := vna.MeasureOIP3(s.golden, bias, []float64{0.002, 0.004, 0.008}, cfg)
		if err != nil {
			return Table{}, fmt.Errorf("E8 %s: %w", c.name, err)
		}
		analytic := vna.AnalyticOIP3(s.golden, bias, 50)
		ampIP3, err := amp.TwoToneOIP3(c.center)
		ampCell := "-"
		if err == nil {
			ampCell = fmt.Sprintf("%.1f", ampIP3.OIP3DBm)
		}
		t.AddRow(
			c.name,
			fmt.Sprintf("%.4f", cfg.F1/1e9),
			fmt.Sprintf("%.2f", ip3.SlopeFund),
			fmt.Sprintf("%.2f", ip3.SlopeIM3),
			fmt.Sprintf("%.1f", ip3.OIP3DBm),
			fmt.Sprintf("%.1f", analytic),
			ampCell,
		)
	}
	return t, nil
}
