package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// suite is shared across the package tests so the expensive campaign,
// extraction and design are computed once.
var testSuite = NewSuite(Config{Seed: 1, Quick: true})

// cell parses a numeric table cell.
func cell(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[col], err)
	}
	return v
}

func findRow(t *testing.T, tab Table, name string) []string {
	t.Helper()
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], name) {
			return r
		}
	}
	t.Fatalf("row %q not found in %s", name, tab.ID)
	return nil
}

func TestE1AngelovWinsCurtice2Loses(t *testing.T) {
	tab, err := testSuite.E1ModelComparison()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 models", len(tab.Rows))
	}
	ang := findRow(t, tab, "Angelov")
	c2 := findRow(t, tab, "Curtice-2")
	if cell(t, ang, 3) > cell(t, c2, 3) {
		t.Errorf("Angelov DC error (%s%%) worse than Curtice-2 (%s%%)", ang[3], c2[3])
	}
	if cell(t, ang, 4) > cell(t, c2, 4) {
		t.Errorf("Angelov S error (%s) worse than Curtice-2 (%s)", ang[4], c2[4])
	}
	// Every model must produce a sane fit (not diverged).
	for _, r := range tab.Rows {
		if cell(t, r, 3) > 20 {
			t.Errorf("model %s diverged: DC rel %s%%", r[0], r[3])
		}
	}
}

func TestE2ThreeStepMostRobust(t *testing.T) {
	tab, err := testSuite.E2ExtractionMethods()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	three := findRow(t, tab, "three-step")
	lm := findRow(t, tab, "LM-only")
	nm := findRow(t, tab, "NM-only")
	if cell(t, three, 1) > cell(t, lm, 1) {
		t.Errorf("three-step median (%s) worse than LM-only (%s)", three[1], lm[1])
	}
	if cell(t, three, 1) > cell(t, nm, 1) {
		t.Errorf("three-step median (%s) worse than NM-only (%s)", three[1], nm[1])
	}
	// Success-rate column format "k/n": three-step must win or tie.
	parse := func(s string) (int, int) {
		parts := strings.Split(s, "/")
		k, _ := strconv.Atoi(parts[0])
		n, _ := strconv.Atoi(parts[1])
		return k, n
	}
	k3, n3 := parse(three[4])
	if k3 != n3 {
		t.Errorf("three-step success %s, want full", three[4])
	}
	kLM, _ := parse(lm[4])
	if kLM > k3 {
		t.Errorf("LM-only success %s beats three-step %s", lm[4], three[4])
	}
}

func TestE3ModelTracksMeasurement(t *testing.T) {
	tab, err := testSuite.E3ModelFit()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("too few frequency rows: %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		meas21 := cell(t, r, 3)
		model21 := cell(t, r, 4)
		if meas21 <= 0 {
			t.Fatalf("non-positive |S21| measurement")
		}
		rel := (model21 - meas21) / meas21
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("f=%s GHz: model |S21| %g vs measured %g (off %.0f%%)",
				r[0], model21, meas21, rel*100)
		}
	}
}

func TestE4FrontsComparable(t *testing.T) {
	tab, err := testSuite.E4GoalAttainment()
	if err != nil {
		t.Fatalf("E4: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(tab.Rows))
	}
	imp := findRow(t, tab, "goal attainment (improved)")
	hvImp := cell(t, imp, 2)
	if hvImp <= 0 {
		t.Fatalf("improved method hypervolume %g, want positive", hvImp)
	}
	// The improved method must be competitive: within 10% of the best
	// hypervolume in the table.
	best := hvImp
	for _, r := range tab.Rows {
		if hv := cell(t, r, 2); hv > best {
			best = hv
		}
	}
	if hvImp < 0.9*best {
		t.Errorf("improved hypervolume %g below 90%% of best %g", hvImp, best)
	}
}

func TestE5AllGoalsMet(t *testing.T) {
	tab, err := testSuite.E5DesignFlow()
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	nf := findRow(t, tab, "NF max")
	if cell(t, nf, 2) > 0.9 {
		t.Errorf("NF goal missed: %s dB", nf[2])
	}
	gt := findRow(t, tab, "GT min")
	if cell(t, gt, 2) < 14 {
		t.Errorf("GT goal missed: %s dB", gt[2])
	}
	stab := findRow(t, tab, "stab margin")
	if cell(t, stab, 2) <= 0 || cell(t, stab, 3) <= 0 {
		t.Errorf("stability margin not positive: %s / %s", stab[2], stab[3])
	}
	if !strings.Contains(tab.Notes, "gamma") {
		t.Error("notes missing attainment factor")
	}
}

func TestE6MeasurementTracksDesign(t *testing.T) {
	tab, err := testSuite.E6Verification()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	for _, r := range tab.Rows {
		dsg := cell(t, r, 1)
		meas := cell(t, r, 2)
		if d := dsg - meas; d > 1.5 || d < -1.5 {
			t.Errorf("f=%s: S21 design %g vs measured %g dB differ by %g",
				r[0], dsg, meas, d)
		}
		nfDsg := cell(t, r, 5)
		nfMeas := cell(t, r, 6)
		if d := nfDsg - nfMeas; d > 0.6 || d < -0.6 {
			t.Errorf("f=%s: NF design %g vs measured %g dB differ by %g",
				r[0], nfDsg, nfMeas, d)
		}
	}
}

func TestE7DispersionShapes(t *testing.T) {
	tab, err := testSuite.E7Dispersion()
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	// epsEff(f) must be non-decreasing and above the static value.
	prev := 0.0
	for i, r := range tab.Rows {
		e := cell(t, r, 5)
		eStatic := cell(t, r, 6)
		if e < eStatic-1e-9 {
			t.Errorf("row %d: dispersive epsEff %g below static %g", i, e, eStatic)
		}
		if e < prev {
			t.Errorf("row %d: epsEff not monotone", i)
		}
		prev = e
		// Loss must grow with frequency.
		if i > 0 {
			if cell(t, r, 7) <= cell(t, tab.Rows[i-1], 7) {
				t.Errorf("row %d: line loss not increasing", i)
			}
		}
	}
	if !strings.Contains(tab.Notes, "ablation") {
		t.Error("notes missing the ideal-passives ablation")
	}
}

func TestE8SlopesAndAgreement(t *testing.T) {
	tab, err := testSuite.E8Intermodulation()
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 bands", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if s := cell(t, r, 2); s < 0.9 || s > 1.1 {
			t.Errorf("%s: fundamental slope %g, want ~1", r[0], s)
		}
		if s := cell(t, r, 3); s < 2.6 || s > 3.4 {
			t.Errorf("%s: IM3 slope %g, want ~3", r[0], s)
		}
		meas, analytic := cell(t, r, 4), cell(t, r, 5)
		if d := meas - analytic; d > 2 || d < -2 {
			t.Errorf("%s: OIP3 measured %g vs analytic %g", r[0], meas, analytic)
		}
	}
}

func TestE9AllSignalsPass(t *testing.T) {
	tab, err := testSuite.E9Constellations()
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d, want all GNSS signals", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] != "yes" {
			t.Errorf("signal %s fails the spec", r[0])
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "T", Title: "demo", Columns: []string{"a", "bb"},
		Notes: "hello",
	}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T — demo", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE10CalibrationImproves(t *testing.T) {
	tab, err := testSuite.E10Calibration()
	if err != nil {
		t.Fatalf("E10: %v", err)
	}
	for _, r := range tab.Rows {
		raw := cell(t, r, 1)
		corr := cell(t, r, 2)
		if corr >= raw {
			t.Errorf("f=%s: correction did not improve (%g -> %g)", r[0], raw, corr)
		}
		if raw < 0.02 {
			t.Errorf("f=%s: raw error %g suspiciously small (test set too clean)", r[0], raw)
		}
	}
}

func TestE11TwoStageGoals(t *testing.T) {
	tab, err := testSuite.E11TwoStage()
	if err != nil {
		t.Fatalf("E11: %v", err)
	}
	firstNum := func(row []string, col int) float64 {
		fields := strings.Fields(row[col])
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("cell %q not numeric: %v", row[col], err)
		}
		return v
	}
	gt := findRow(t, tab, "GT @1.4GHz")
	if v := firstNum(gt, 3); v < 26 {
		t.Errorf("cascade gain %g dB, want ~>= 26 even in quick mode", v)
	}
	nf := findRow(t, tab, "NF @1.4GHz")
	if v := firstNum(nf, 3); v > 1.3 {
		t.Errorf("cascade NF %g dB, want ~<= 1.3", v)
	}
	stab := findRow(t, tab, "stab margin")
	if v := cell(t, stab, 3); v <= 0 {
		t.Errorf("cascade stability margin %g", v)
	}
}

func TestFiguresRender(t *testing.T) {
	figs, err := testSuite.Figures()
	if err != nil {
		t.Fatalf("Figures: %v", err)
	}
	if len(figs) != 4 {
		t.Fatalf("figures = %d, want 4", len(figs))
	}
	for i, f := range figs {
		if !strings.Contains(f, "Fig. E") {
			t.Errorf("figure %d missing title:\n%s", i, f)
		}
		if !strings.Contains(f, "*") {
			t.Errorf("figure %d has no data points", i)
		}
	}
}

func TestE12LinkBudgetShapes(t *testing.T) {
	tab, err := testSuite.E12LinkBudget()
	if err != nil {
		t.Fatalf("E12: %v", err)
	}
	prev := 0.0
	for i, r := range tab.Rows {
		bare := cell(t, r, 1)
		withLNA := cell(t, r, 2)
		gain := cell(t, r, 3)
		if withLNA >= bare {
			t.Errorf("row %d: LNA did not lower system temperature", i)
		}
		if gain <= prev-1e-9 {
			t.Errorf("row %d: C/N0 gain not growing with cable loss", i)
		}
		prev = gain
		if cn0 := cell(t, r, 4); cn0 < 35 || cn0 > 55 {
			t.Errorf("row %d: implausible C/N0 %g", i, cn0)
		}
	}
}

func TestE4bAblation(t *testing.T) {
	tab, err := testSuite.E4bAblation()
	if err != nil {
		t.Fatalf("E4b: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(tab.Rows))
	}
	full := findRow(t, tab, "full method")
	hvFull := cell(t, full, 1)
	if hvFull <= 0 {
		t.Fatalf("full-method hypervolume %g", hvFull)
	}
	// Every ablated variant must still produce a usable front, and the
	// full method should not be dominated badly by any ablation (within
	// 15% hypervolume).
	for _, r := range tab.Rows {
		hv := cell(t, r, 1)
		if hv <= 0 {
			t.Errorf("%s: no front produced", r[0])
		}
		if hvFull < 0.85*hv {
			t.Errorf("%s (hv %g) dominates the full method (hv %g) badly", r[0], hv, hvFull)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}, Notes: "n"}
	tab.AddRow("1", "2")
	md := tab.Markdown()
	for _, want := range []string{"### T — demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
