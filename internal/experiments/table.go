// Package experiments regenerates every table and figure of the
// reconstructed evaluation (E1-E9 in DESIGN.md): the pHEMT model
// comparison, the extraction-method study, the model-vs-measurement
// overlay, the Pareto-front method comparison, the optimized design table,
// the verification sweep, the passive-dispersion study, the two-tone
// intermodulation check, and the per-constellation performance table.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a paper-style results table.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the table or figure it reproduces.
	Title string
	// Columns holds the column headers.
	Columns []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes carries provenance or caveats printed under the table.
	Notes string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render lays the table out as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown lays the table out as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}
