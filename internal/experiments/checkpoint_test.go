package experiments

import (
	"math"
	"path/filepath"
	"testing"
)

// TestSuiteCheckpointRestoresStages proves the stage checkpoints: a second
// suite pointed at the same checkpoint file restores the extraction and
// design stages bit-identically without recomputing them (it never even
// runs the measurement campaign).
func TestSuiteCheckpointRestoresStages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.jsonl")
	cfg := Config{Seed: 5, Quick: true, Checkpoint: path}

	a := NewSuite(cfg)
	exA, err := a.Extracted()
	if err != nil {
		t.Fatalf("first extraction: %v", err)
	}
	dA, err := a.Design()
	if err != nil {
		t.Fatalf("first design: %v", err)
	}

	b := NewSuite(cfg)
	exB, err := b.Extracted()
	if err != nil {
		t.Fatalf("restored extraction: %v", err)
	}
	if b.dataset != nil {
		t.Error("restored extraction ran the measurement campaign")
	}
	dB, err := b.Design()
	if err != nil {
		t.Fatalf("restored design: %v", err)
	}
	if b.designer != nil {
		t.Error("restored design rebuilt the designer")
	}

	bitEq := func(name string, x, y float64) {
		t.Helper()
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Errorf("%s not bit-identical: %v vs %v", name, x, y)
		}
	}
	bitEq("SRMSE", exA.SRMSE, exB.SRMSE)
	bitEq("SRMSEAfterDE", exA.SRMSEAfterDE, exB.SRMSEAfterDE)
	bitEq("DC.RelRMSE", exA.DC.RelRMSE, exB.DC.RelRMSE)
	if exA.SEvals != exB.SEvals {
		t.Errorf("SEvals differ: %d vs %d", exA.SEvals, exB.SEvals)
	}
	if exB.Device == nil || exB.Device.Name != exA.Device.Name {
		t.Fatalf("restored device mismatch: %+v", exB.Device)
	}
	pa, pb := exA.Device.DC.Params(), exB.Device.DC.Params()
	for i := range pa {
		bitEq("device DC param", pa[i], pb[i])
	}
	bitEq("device Ri", exA.Device.Ri, exB.Device.Ri)
	bitEq("device Ext.Rg", exA.Device.Ext.Rg, exB.Device.Ext.Rg)

	va, vb := dA.Design.Vector(), dB.Design.Vector()
	for i := range va {
		bitEq("design vector", va[i], vb[i])
	}
	bitEq("Gamma", dA.Gamma, dB.Gamma)
	bitEq("WorstNFdB", dA.Eval.WorstNFdB, dB.Eval.WorstNFdB)
	if dA.Evals != dB.Evals {
		t.Errorf("design evals differ: %d vs %d", dA.Evals, dB.Evals)
	}

	// A suite with a different seed must not match the records and instead
	// recompute from scratch.
	c := NewSuite(Config{Seed: 6, Quick: true, Checkpoint: path})
	if _, err := c.Extracted(); err != nil {
		t.Fatalf("mismatched-seed extraction: %v", err)
	}
	if c.dataset == nil {
		t.Error("mismatched-seed suite reused a foreign checkpoint")
	}
}
