package experiments

import (
	"fmt"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/extract"
	"gnsslna/internal/optim"
	"gnsslna/internal/vna"
)

// Config scales the experiment budgets.
type Config struct {
	// Seed drives every deterministic random process.
	Seed int64
	// Quick trims optimization budgets for tests and benchmarks.
	Quick bool
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Suite shares expensive intermediate results (the measurement campaign,
// the optimized design, the extraction) across experiments.
type Suite struct {
	cfg    Config
	golden *device.PHEMT

	dataset   *vna.Dataset
	extracted *extract.Result
	design    *core.DesignResult
	designer  *core.Designer
}

// NewSuite builds a suite around the golden device.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg, golden: device.Golden()}
}

// Golden exposes the reference device.
func (s *Suite) Golden() *device.PHEMT { return s.golden }

// Dataset lazily runs (and caches) the measurement campaign.
func (s *Suite) Dataset() (*vna.Dataset, error) {
	if s.dataset != nil {
		return s.dataset, nil
	}
	ds, err := vna.RunCampaign(s.golden, vna.DefaultCampaign(s.cfg.seed()))
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign: %w", err)
	}
	s.dataset = ds
	return ds, nil
}

// extractCfg returns the extraction budget for the suite mode.
func (s *Suite) extractCfg(seed int64) extract.Config {
	if s.cfg.Quick {
		return extract.Config{Seed: seed, DCEvals: 6000, GlobalEvals: 2500, RefineIters: 20}
	}
	return extract.Config{Seed: seed, DCEvals: 20000, GlobalEvals: 8000, RefineIters: 60}
}

// attainOpts returns the design-optimization budget for the suite mode.
func (s *Suite) attainOpts(seed int64) *optim.AttainOptions {
	if s.cfg.Quick {
		return &optim.AttainOptions{Seed: seed, GlobalEvals: 1500, PolishEvals: 900}
	}
	return &optim.AttainOptions{Seed: seed, GlobalEvals: 5000, PolishEvals: 3000}
}

// Extracted lazily extracts (and caches) the Angelov-class device.
func (s *Suite) Extracted() (*extract.Result, error) {
	if s.extracted != nil {
		return s.extracted, nil
	}
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	res, err := extract.ThreeStep(ds, device.NewAngelov(), s.extractCfg(s.cfg.seed()))
	if err != nil {
		return nil, fmt.Errorf("experiments: extraction: %w", err)
	}
	s.extracted = &res
	return s.extracted, nil
}

// Designer lazily builds (and caches) the designer around the extracted
// device — the design flows uses the model, exactly as the paper does, and
// verification measures the golden truth.
func (s *Suite) Designer() (*core.Designer, error) {
	if s.designer != nil {
		return s.designer, nil
	}
	ex, err := s.Extracted()
	if err != nil {
		return nil, err
	}
	d := core.NewDesigner(core.NewBuilder(ex.Device))
	if s.cfg.Quick {
		d.Spec.NPoints = 7
	}
	s.designer = d
	return d, nil
}

// Design lazily optimizes (and caches) the preamplifier design.
func (s *Suite) Design() (*core.DesignResult, error) {
	if s.design != nil {
		return s.design, nil
	}
	d, err := s.Designer()
	if err != nil {
		return nil, err
	}
	res, err := d.Optimize(s.attainOpts(s.cfg.seed()))
	if err != nil {
		return nil, fmt.Errorf("experiments: design: %w", err)
	}
	s.design = &res
	return s.design, nil
}

// All runs every experiment in order.
func (s *Suite) All() ([]Table, error) {
	runs := []func() (Table, error){
		s.E1ModelComparison,
		s.E2ExtractionMethods,
		s.E3ModelFit,
		s.E4GoalAttainment,
		s.E4bAblation,
		s.E5DesignFlow,
		s.E6Verification,
		s.E7Dispersion,
		s.E8Intermodulation,
		s.E9Constellations,
		s.E10Calibration,
		s.E11TwoStage,
		s.E12LinkBudget,
	}
	out := make([]Table, 0, len(runs))
	for _, run := range runs {
		t, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
