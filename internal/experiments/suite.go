package experiments

import (
	"context"
	"fmt"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/extract"
	"gnsslna/internal/obs"
	"gnsslna/internal/optim"
	"gnsslna/internal/resilience"
	"gnsslna/internal/vna"
)

// Config scales the experiment budgets.
type Config struct {
	// Seed drives every deterministic random process.
	Seed int64
	// Quick trims optimization budgets for tests and benchmarks.
	Quick bool
	// Observer receives progress events from every pipeline the suite runs:
	// optimizer convergence records, extraction step spans, the measurement
	// campaign, and one "experiment.<id>" span per experiment whose eval
	// count aggregates the objective evaluations that experiment consumed
	// (nil: disabled).
	Observer obs.Observer
	// Control, when set, is polled by every optimizer the suite runs; a
	// stopped run surfaces as a wrapped *resilience.Stopped error (nil:
	// run to completion).
	Control *resilience.RunController
	// Checkpoint, when non-empty, is a JSONL file the suite appends
	// completed stage results to (extraction, design) and restores them
	// from on a later run with the same Seed and Quick mode, skipping the
	// recomputation entirely.
	Checkpoint string
	// Restarts bounds the jittered multi-start recoveries of the design
	// optimization after breaker trips (0: single attempt).
	Restarts int
	// Workers bounds the goroutines the optimization and sweep stages use
	// to fan out candidate evaluations (<= 1: serial). Results are
	// identical for any worker count.
	Workers int
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Suite shares expensive intermediate results (the measurement campaign,
// the optimized design, the extraction) across experiments.
type Suite struct {
	cfg    Config
	golden *device.PHEMT
	tally  *obs.Tally
	fwd    obs.Observer
	cur    obs.Observer

	dataset   *vna.Dataset
	extracted *extract.Result
	design    *core.DesignResult
	designer  *core.Designer
}

// NewSuite builds a suite around the golden device.
func NewSuite(cfg Config) *Suite {
	s := &Suite{cfg: cfg, golden: device.Golden()}
	switch o := cfg.Observer.(type) {
	case nil:
	case *obs.Traced:
		// Splice the tally between the trace stamping and the sink so the
		// observer the pipelines see is still a *obs.Traced — hiding it
		// behind the tally would flatten every span StartSpan opens.
		s.tally = obs.NewTally(o.Sink())
		s.fwd = o.WithSink(s.tally)
	default:
		s.tally = obs.NewTally(o)
		s.fwd = s.tally
	}
	return s
}

// obs returns the suite's forwarding observer, or nil when observation is
// disabled. All inner pipelines receive the tally so per-experiment eval
// deltas can be accounted; while an experiment is running they additionally
// emit through its span, so shared lazy stages parent under the first
// experiment that paid for them.
func (s *Suite) obs() obs.Observer {
	if s.cur != nil {
		return s.cur
	}
	return s.fwd
}

// Golden exposes the reference device.
func (s *Suite) Golden() *device.PHEMT { return s.golden }

// Dataset lazily runs (and caches) the measurement campaign.
func (s *Suite) Dataset() (*vna.Dataset, error) {
	if s.dataset != nil {
		return s.dataset, nil
	}
	campaign := vna.DefaultCampaign(s.cfg.seed())
	campaign.Observer = s.obs()
	ds, err := vna.RunCampaign(s.golden, campaign)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign: %w", err)
	}
	s.dataset = ds
	return ds, nil
}

// extractCfg returns the extraction budget for the suite mode.
func (s *Suite) extractCfg(seed int64) extract.Config {
	cfg := extract.Config{Seed: seed, DCEvals: 20000, GlobalEvals: 8000, RefineIters: 60, Observer: s.obs(), Control: s.cfg.Control, Workers: s.cfg.Workers}
	if s.cfg.Quick {
		cfg.DCEvals, cfg.GlobalEvals, cfg.RefineIters = 6000, 2500, 20
	}
	return cfg
}

// attainOpts returns the design-optimization budget for the suite mode.
func (s *Suite) attainOpts(seed int64) *optim.AttainOptions {
	o := &optim.AttainOptions{
		Seed: seed, GlobalEvals: 5000, PolishEvals: 3000,
		Observer: s.obs(), Scope: "design.attain",
		Control: s.cfg.Control, Restarts: s.cfg.Restarts,
		Workers: s.cfg.Workers,
	}
	if s.cfg.Quick {
		o.GlobalEvals, o.PolishEvals = 1500, 900
	}
	return o
}

// restoreStage loads a checkpointed stage result into `into`, reporting
// whether the stage can be skipped. Restore failures degrade to
// recomputation: a corrupt or stale checkpoint must never wedge the suite.
func (s *Suite) restoreStage(stage string, into any) bool {
	if s.cfg.Checkpoint == "" {
		return false
	}
	ok, err := resilience.RestoreCheckpoint(s.cfg.Checkpoint, stage, s.cfg.seed(), s.cfg.Quick, into)
	return err == nil && ok
}

// saveStage appends a completed stage result to the checkpoint file.
func (s *Suite) saveStage(stage string, state any) error {
	if s.cfg.Checkpoint == "" {
		return nil
	}
	if err := resilience.SaveCheckpoint(s.cfg.Checkpoint, stage, s.cfg.seed(), s.cfg.Quick, state); err != nil {
		return fmt.Errorf("experiments: checkpoint %s: %w", stage, err)
	}
	return nil
}

// Extracted lazily extracts (and caches) the Angelov-class device. With a
// checkpoint file configured, a previously completed extraction for the
// same seed and mode is restored instead of recomputed.
func (s *Suite) Extracted() (*extract.Result, error) {
	if s.extracted != nil {
		return s.extracted, nil
	}
	var saved extract.Result
	if s.restoreStage("extract", &saved) && saved.Device != nil {
		s.extracted = &saved
		return s.extracted, nil
	}
	ds, err := s.Dataset()
	if err != nil {
		return nil, err
	}
	res, err := extract.ThreeStep(ds, device.NewAngelov(), s.extractCfg(s.cfg.seed()))
	if err != nil {
		return nil, fmt.Errorf("experiments: extraction: %w", err)
	}
	if err := s.saveStage("extract", res); err != nil {
		return nil, err
	}
	s.extracted = &res
	return s.extracted, nil
}

// Designer lazily builds (and caches) the designer around the extracted
// device — the design flows uses the model, exactly as the paper does, and
// verification measures the golden truth.
func (s *Suite) Designer() (*core.Designer, error) {
	if s.designer != nil {
		return s.designer, nil
	}
	ex, err := s.Extracted()
	if err != nil {
		return nil, err
	}
	d := core.NewDesigner(core.NewBuilder(ex.Device))
	d.Workers = s.cfg.Workers
	if s.cfg.Quick {
		d.Spec.NPoints = 7
	}
	s.designer = d
	return d, nil
}

// Design lazily optimizes (and caches) the preamplifier design. With a
// checkpoint file configured, a previously completed design for the same
// seed and mode is restored instead of re-optimized.
func (s *Suite) Design() (*core.DesignResult, error) {
	if s.design != nil {
		return s.design, nil
	}
	var saved core.DesignResult
	if s.restoreStage("design", &saved) && saved.Evals > 0 {
		s.design = &saved
		return s.design, nil
	}
	d, err := s.Designer()
	if err != nil {
		return nil, err
	}
	res, err := d.Optimize(s.attainOpts(s.cfg.seed()))
	if err != nil {
		err = fmt.Errorf("experiments: design: %w", err)
		// A stopped search still carries the best design found so far:
		// hand it to the caller (uncached and uncheckpointed, so a later
		// run completes the work).
		if _, stopped := resilience.AsStopped(err); stopped && res.Evals > 0 {
			return &res, err
		}
		return nil, err
	}
	if err := s.saveStage("design", res); err != nil {
		return nil, err
	}
	s.design = &res
	return s.design, nil
}

// experimentEntry pairs an experiment identifier with its runner.
type experimentEntry struct {
	ID  string
	Run func() (Table, error)
}

// registry lists every experiment in canonical run order. It is the single
// source of truth for the valid experiment identifiers.
func (s *Suite) registry() []experimentEntry {
	return []experimentEntry{
		{"e1", s.E1ModelComparison},
		{"e2", s.E2ExtractionMethods},
		{"e3", s.E3ModelFit},
		{"e4", s.E4GoalAttainment},
		{"e4b", s.E4bAblation},
		{"e5", s.E5DesignFlow},
		{"e6", s.E6Verification},
		{"e7", s.E7Dispersion},
		{"e8", s.E8Intermodulation},
		{"e9", s.E9Constellations},
		{"e10", s.E10Calibration},
		{"e11", s.E11TwoStage},
		{"e12", s.E12LinkBudget},
	}
}

// IDs returns the experiment identifiers in canonical run order.
func (s *Suite) IDs() []string {
	entries := s.registry()
	ids := make([]string, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	return ids
}

// ErrUnknownExperiment reports an experiment id outside IDs().
var ErrUnknownExperiment = fmt.Errorf("experiments: unknown experiment")

// Run executes one experiment by id, wrapped in an "experiment.<id>" span
// whose eval count aggregates every objective evaluation the experiment
// consumed. Shared stages (campaign, extraction, design) are computed lazily
// and cached, so their cost is attributed to the first experiment that
// needs them.
func (s *Suite) Run(id string) (Table, error) {
	for _, e := range s.registry() {
		if e.ID == id {
			return s.runEntry(e)
		}
	}
	return Table{}, fmt.Errorf("%w %q", ErrUnknownExperiment, id)
}

func (s *Suite) runEntry(e experimentEntry) (Table, error) {
	var before int64
	if s.tally != nil {
		before = s.tally.Evals()
	}
	spanObs, end := obs.StartSpan(s.fwd, "experiment."+e.ID)
	s.cur = spanObs
	var t Table
	var err error
	obs.ProfDo("experiment", e.ID, func(context.Context) {
		t, err = e.Run()
	})
	s.cur = nil
	if err != nil {
		return Table{}, err
	}
	var delta int64
	if s.tally != nil {
		delta = s.tally.Evals() - before
	}
	end(delta)
	return t, nil
}

// All runs every experiment in order.
func (s *Suite) All() ([]Table, error) {
	entries := s.registry()
	out := make([]Table, 0, len(entries))
	for _, e := range entries {
		t, err := s.runEntry(e)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
