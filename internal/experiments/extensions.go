package experiments

import (
	"fmt"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
	"gnsslna/internal/units"
	"gnsslna/internal/vna"
)

// E10Calibration is an extension experiment beyond the paper's evaluation:
// it quantifies what the SOLT calibration of the measurement chain buys by
// comparing raw (error-box distorted) and corrected S-parameter errors
// against the golden truth.
func (s *Suite) E10Calibration() (Table, error) {
	d := s.golden
	bias := device.Bias{Vgs: 0.52, Vds: 3}
	freqs := mathx.Linspace(1e9, 2e9, 6)
	chain := vna.NewRawChain(s.cfg.seed() + 500)

	raw, err := chain.MeasureRaw(freqs, func(f float64) (twoport.Mat2, error) {
		return d.SAt(bias, f, 50)
	})
	if err != nil {
		return Table{}, fmt.Errorf("E10 raw: %w", err)
	}
	corrected, err := chain.MeasureDeviceCalibrated(d, bias, freqs)
	if err != nil {
		return Table{}, fmt.Errorf("E10 corrected: %w", err)
	}
	t := Table{
		ID:    "E10 (extension)",
		Title: "SOLT calibration of the measurement chain",
		Columns: []string{
			"f [GHz]", "raw err", "corrected err", "improvement",
		},
		Notes: "max |dS| over the four S-parameters against the golden truth; " +
			"the raw column shows the uncorrected test-set systematic error",
	}
	for i, f := range freqs {
		truth, err := d.SAt(bias, f, 50)
		if err != nil {
			return Table{}, err
		}
		eRaw := twoport.MaxAbsDiff(raw.S[i], truth)
		eCorr := twoport.MaxAbsDiff(corrected.S[i], truth)
		imp := "-"
		if eCorr > 0 {
			imp = fmt.Sprintf("%.0fx", eRaw/eCorr)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", f/1e9),
			fmt.Sprintf("%.4f", eRaw),
			fmt.Sprintf("%.4f", eCorr),
			imp,
		)
	}
	return t, nil
}

// E11TwoStage is an extension experiment: a jointly optimized two-stage
// cascade for receivers needing ~30 dB of antenna-side gain, with Friis
// keeping the first stage in charge of the noise figure.
func (s *Suite) E11TwoStage() (Table, error) {
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	spec := core.DefaultTwoStageSpec()
	if s.cfg.Quick {
		spec.Spec.NPoints = 5
	}
	opts := s.attainOpts(s.cfg.seed() + 11)
	res, err := d.OptimizeTwoStage(spec, opts)
	if err != nil {
		return Table{}, fmt.Errorf("E11: %w", err)
	}
	t := Table{
		ID:      "E11 (extension)",
		Title:   "jointly optimized two-stage cascade",
		Columns: []string{"quantity", "stage 1", "stage 2", "cascade"},
		Notes: fmt.Sprintf("goals: NF <= %.2f dB, GT >= %.0f dB, Pdc <= %.0f mW; gamma = %.3f",
			spec.NFMaxDB, spec.GTMinDB, spec.PdcMaxW*1e3, res.Gamma),
	}
	ts, err := d.Builder.BuildTwoStage(res.D1, res.D2)
	if err != nil {
		return Table{}, err
	}
	f0 := 1.4e9
	m1, err := ts.First.MetricsAt(f0, 50)
	if err != nil {
		return Table{}, err
	}
	m2, err := ts.Second.MetricsAt(f0, 50)
	if err != nil {
		return Table{}, err
	}
	t.AddRow("Vgs [V]", fmt.Sprintf("%.3f", res.D1.Vgs), fmt.Sprintf("%.3f", res.D2.Vgs), "-")
	t.AddRow("L_in", units.Format(res.D1.LIn, "H"), units.Format(res.D2.LIn, "H"), "-")
	t.AddRow("NF @1.4GHz [dB]", fmt.Sprintf("%.3f", m1.NFdB), fmt.Sprintf("%.3f", m2.NFdB),
		fmt.Sprintf("%.3f (band max %.3f)", mustMetric(ts, f0).NFdB, res.WorstNFdB))
	t.AddRow("GT @1.4GHz [dB]", fmt.Sprintf("%.2f", m1.GTdB), fmt.Sprintf("%.2f", m2.GTdB),
		fmt.Sprintf("%.2f (band min %.2f)", mustMetric(ts, f0).GTdB, res.MinGTdB))
	t.AddRow("Pdc [mW]",
		fmt.Sprintf("%.0f", ts.First.PowerDissipation()*1e3),
		fmt.Sprintf("%.0f", ts.Second.PowerDissipation()*1e3),
		fmt.Sprintf("%.0f", res.PdcW*1e3))
	t.AddRow("stab margin", "-", "-", fmt.Sprintf("%.3f", res.StabMargin))
	return t, nil
}

func mustMetric(ts *core.TwoStage, f float64) core.PointMetrics {
	m, err := ts.MetricsAt(f, 50)
	if err != nil {
		return core.PointMetrics{}
	}
	return m
}
