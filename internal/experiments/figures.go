package experiments

import (
	"fmt"
	"math/cmplx"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/optim"
	"gnsslna/internal/plot"
	"gnsslna/internal/twoport"
	"gnsslna/internal/vna"
)

// FigModelFit renders the E3 figure: measured versus modeled |S21| and
// |S11| over frequency.
func (s *Suite) FigModelFit() (string, error) {
	ds, err := s.Dataset()
	if err != nil {
		return "", err
	}
	ex, err := s.Extracted()
	if err != nil {
		return "", err
	}
	set := ds.Hot[len(ds.Hot)/2]
	var fGHz, meas21, model21, meas11, model11 []float64
	for i, f := range set.Net.Freqs {
		got, err := ex.Device.SAt(set.Bias, f, ds.Z0)
		if err != nil {
			return "", err
		}
		fGHz = append(fGHz, f/1e9)
		meas21 = append(meas21, cmplx.Abs(set.Net.S[i][1][0]))
		model21 = append(model21, cmplx.Abs(got[1][0]))
		meas11 = append(meas11, cmplx.Abs(set.Net.S[i][0][0]))
		model11 = append(model11, cmplx.Abs(got[0][0]))
	}
	p := plot.Plot{
		Title:  fmt.Sprintf("Fig. E3 — measured vs extracted model at Vgs=%.2f V", set.Bias.Vgs),
		XLabel: "f [GHz]", YLabel: "|S|",
		Width: 68, Height: 18,
	}
	p.Add("|S21| measured", fGHz, meas21)
	p.Add("|S21| model", fGHz, model21)
	p.Add("|S11| measured", fGHz, meas11)
	p.Add("|S11| model", fGHz, model11)
	return p.Render(), nil
}

// FigPareto renders the E4 figure: the NF-vs-GT front traced by the
// improved goal-attainment method against an NSGA-II cloud.
func (s *Suite) FigPareto() (string, error) {
	obj, err := s.paretoObjective()
	if err != nil {
		return "", err
	}
	lo, hi := core.DesignBounds()
	var gaNF, gaGT []float64
	for i, w := range []float64{0.1, 0.3, 1, 3, 10} {
		goals := []optim.Goal{
			{Name: "NF", Target: 0.15, Weight: w},
			{Name: "-GT", Target: -24, Weight: 1},
		}
		opts := s.e4Budget()
		opts.Seed = s.cfg.seed() + int64(i+40)
		res, err := optim.GoalAttainImproved(obj, goals, lo, hi, opts)
		if err != nil {
			return "", err
		}
		gaNF = append(gaNF, res.F[0])
		gaGT = append(gaGT, -res.F[1])
	}
	pop, gens := 40, 25
	if s.cfg.Quick {
		pop, gens = 28, 15
	}
	nsga, err := optim.NSGA2(obj, lo, hi, &optim.NSGA2Options{Pop: pop, Generations: gens, Seed: s.cfg.seed()})
	if err != nil {
		return "", err
	}
	var nsNF, nsGT []float64
	for _, f := range nsga.F {
		if f[0] < 2.5 && f[1] > -30 {
			nsNF = append(nsNF, f[0])
			nsGT = append(nsGT, -f[1])
		}
	}
	p := plot.Plot{
		Title:  "Fig. E4 — NF vs GT trade-off at 1.4 GHz",
		XLabel: "NF [dB]", YLabel: "GT [dB]",
		Width: 68, Height: 18,
	}
	p.Add("improved goal attainment", gaNF, gaGT)
	p.Add("NSGA-II front", nsNF, nsGT)
	return p.Render(), nil
}

// FigVerification renders the E6 figure: designed versus measured gain and
// noise figure of the finished preamplifier.
func (s *Suite) FigVerification() (string, error) {
	d, err := s.Designer()
	if err != nil {
		return "", err
	}
	res, err := s.Design()
	if err != nil {
		return "", err
	}
	predicted, err := d.Builder.Build(res.Snapped)
	if err != nil {
		return "", err
	}
	hwBuilder := *d.Builder
	hwBuilder.Dev = s.golden
	hardware, err := hwBuilder.Build(res.Snapped)
	if err != nil {
		return "", err
	}
	freqs := mathx.Linspace(1.0e9, 1.8e9, 33)
	v := vna.NewVNA(s.cfg.seed() + 177)
	measured, err := v.Measure(freqs, func(f float64) (twoport.Mat2, error) {
		return hardware.SAt(f, 50)
	})
	if err != nil {
		return "", err
	}
	var fGHz, gPred, gMeas, nfPred []float64
	for i, f := range freqs {
		m, err := predicted.MetricsAt(f, 50)
		if err != nil {
			return "", err
		}
		fGHz = append(fGHz, f/1e9)
		gPred = append(gPred, m.GTdB)
		gMeas = append(gMeas, mathx.DB20(cmplx.Abs(measured.S[i][1][0])))
		nfPred = append(nfPred, m.NFdB)
	}
	p := plot.Plot{
		Title:  "Fig. E6 — designed vs measured preamplifier response",
		XLabel: "f [GHz]", YLabel: "dB",
		Width: 68, Height: 18,
	}
	p.Add("S21 design", fGHz, gPred)
	p.Add("S21 measured", fGHz, gMeas)
	p.Add("NF design (x10)", fGHz, scale(nfPred, 10))
	return p.Render(), nil
}

// FigCircles renders the gamma-plane design chart at band center: the
// device's noise circles, its optimum noise source, the simultaneous-match
// point and the source stability circle — the Smith-chart view an RF
// designer works from.
func (s *Suite) FigCircles() (string, error) {
	ex, err := s.Extracted()
	if err != nil {
		return "", err
	}
	res, err := s.Design()
	if err != nil {
		return "", err
	}
	bias := device.Bias{Vgs: res.Snapped.Vgs, Vds: res.Snapped.Vds}
	const f0 = 1.4e9
	tp, err := ex.Device.NoisyAt(bias, f0)
	if err != nil {
		return "", err
	}
	p, err := tp.NoiseParams(50)
	if err != nil {
		return "", err
	}
	g := plot.GammaPlane{
		Title: fmt.Sprintf("Fig. E5 — source-plane design chart at 1.4 GHz (Fmin %.2f dB)", p.FminDB()),
	}
	g.Add("GammaOpt", []complex128{p.GammaOpt})
	for _, extra := range []float64{0.1, 0.3} {
		c, err := p.Circle(p.Fmin * mathx.FromDB10(extra))
		if err == nil {
			g.AddCircle(fmt.Sprintf("NF +%.1f dB", extra), c.Center, c.Radius)
		}
	}
	sDev, err := tp.S(50)
	if err != nil {
		return "", err
	}
	sc := twoport.SourceStabilityCircle(sDev)
	if sc.Radius < 3 {
		g.AddCircle("source stability", sc.Center, sc.Radius)
	}
	return g.Render(), nil
}

// Figures renders every available figure.
func (s *Suite) Figures() ([]string, error) {
	out := make([]string, 0, 4)
	for _, f := range []func() (string, error){
		s.FigModelFit, s.FigPareto, s.FigVerification, s.FigCircles,
	} {
		fig, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}
