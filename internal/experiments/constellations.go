package experiments

import (
	"fmt"

	"gnsslna/internal/core"
)

// E9Constellations reproduces the multi-constellation table: the finished
// (snapped) preamplifier graded at every GNSS signal the paper's
// introduction enumerates.
func (s *Suite) E9Constellations() (Table, error) {
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	amp, err := d.Builder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "E9",
		Title:   "final preamplifier at every GNSS signal",
		Columns: []string{"signal", "f [GHz]", "NF [dB]", "GT [dB]", "S11 [dB]", "S22 [dB]", "mu", "meets spec"},
		Notes: fmt.Sprintf("spec: NF <= %.2f dB, GT >= %.1f dB, S11/S22 <= %.0f dB, mu > 1",
			d.Spec.NFMaxDB, d.Spec.GTMinDB, d.Spec.S11MaxDB),
	}
	for _, b := range core.GNSSBands() {
		m, err := amp.MetricsAt(b.Center, 50)
		if err != nil {
			return Table{}, fmt.Errorf("E9 %s: %w", b.Name, err)
		}
		pass := m.NFdB <= d.Spec.NFMaxDB &&
			m.GTdB >= d.Spec.GTMinDB &&
			m.S11dB <= d.Spec.S11MaxDB &&
			m.S22dB <= d.Spec.S22MaxDB &&
			m.Mu > 1
		mark := "yes"
		if !pass {
			mark = "NO"
		}
		t.AddRow(
			b.Name,
			fmt.Sprintf("%.5f", b.Center/1e9),
			fmt.Sprintf("%.3f", m.NFdB),
			fmt.Sprintf("%.2f", m.GTdB),
			fmt.Sprintf("%.1f", m.S11dB),
			fmt.Sprintf("%.1f", m.S22dB),
			fmt.Sprintf("%.3f", m.Mu),
			mark,
		)
	}
	return t, nil
}
