package experiments

import (
	"fmt"

	"gnsslna/internal/core"
	"gnsslna/internal/mathx"
	"gnsslna/internal/optim"
)

// E4bAblation dissects the improved goal-attainment method: each of its
// three ingredients (adaptive normalization, KS smoothing, DE seeding) is
// disabled in turn on the NF-vs-GT front-tracing task, measuring what each
// contributes — the ablation DESIGN.md calls out.
func (s *Suite) E4bAblation() (Table, error) {
	obj, err := s.paretoObjective()
	if err != nil {
		return Table{}, err
	}
	lo, hi := core.DesignBounds()
	ref := [2]float64{2.0, -8.0}
	rays := []float64{0.1, 0.25, 0.5, 1, 2, 4, 10}
	utopia := []optim.Goal{
		{Name: "NF", Target: 0.15, Weight: 1},
		{Name: "-GT", Target: -24, Weight: 1},
	}
	variants := []struct {
		name string
		v    optim.ImprovedVariant
	}{
		{"full method", optim.ImprovedVariant{}},
		{"- normalization", optim.ImprovedVariant{DisableNormalization: true}},
		{"- KS smoothing", optim.ImprovedVariant{DisableKS: true}},
		{"- DE seeding", optim.ImprovedVariant{DisableSeeding: true}},
	}
	t := Table{
		ID:      "E4b (ablation)",
		Title:   "improved goal attainment with ingredients removed",
		Columns: []string{"variant", "hypervolume", "spread", "mean attain err", "evals"},
		Notes: "same 7 goal rays as E4; hypervolume against (NF 2 dB, GT 8 dB); " +
			"each row disables one ingredient of the improved method",
	}
	for _, variant := range variants {
		var front [][]float64
		var attErr []float64
		evals := 0
		for i, w := range rays {
			goals := append([]optim.Goal(nil), utopia...)
			goals[0].Weight = w
			opts := s.e4Budget()
			opts.Seed = s.cfg.seed() + int64(i)
			res, err := optim.GoalAttainImprovedVariant(obj, goals, lo, hi, opts, variant.v)
			if err != nil {
				return Table{}, fmt.Errorf("E4b %s: %w", variant.name, err)
			}
			front = append(front, res.F)
			evals += res.Evals
			attErr = append(attErr, optim.AttainmentError(res.F, goals))
		}
		t.AddRow(
			variant.name,
			fmt.Sprintf("%.3f", optim.Hypervolume2D(front, ref)),
			fmt.Sprintf("%.3f", optim.Spread(front)),
			fmt.Sprintf("%.3f", mathx.Mean(attErr)),
			fmt.Sprintf("%d", evals),
		)
	}
	return t, nil
}
