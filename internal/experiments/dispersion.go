package experiments

import (
	"fmt"

	"gnsslna/internal/rfpassive"
)

// E7Dispersion reproduces the passive-element dispersion study: the Q and
// ESR of the selected chip elements versus frequency, the microstrip
// parameters with and without dispersion, and — the ablation the paper's
// third contribution motivates — the band performance predicted with ideal
// (lossless, parasitic-free) passives against the dispersive models.
func (s *Suite) E7Dispersion() (Table, error) {
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	d, err := s.Designer()
	if err != nil {
		return Table{}, err
	}
	lIn := rfpassive.NewChipInductor(res.Snapped.LIn, rfpassive.Series)
	cOut := rfpassive.NewChipCapacitor(res.Snapped.COut, rfpassive.Shunt)
	sub := d.Builder.Sub
	w50, err := sub.WidthForZ0(50)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:    "E7",
		Title: "frequency dispersion of the selected passive elements",
		Columns: []string{
			"f [GHz]", "L_in Q", "L_in ESR", "C_out Q", "C_out ESR",
			"ustrip epsEff", "epsEff static", "ustrip a [dB/m]",
		},
		Notes: fmt.Sprintf("L_in = %.3g nH, C_out = %.3g pF on %.2f/%.3gmm substrate; "+
			"SRF(L_in) = %.2f GHz", res.Snapped.LIn*1e9, res.Snapped.COut*1e12,
			sub.Er, sub.H*1e3, lIn.SRF()/1e9),
	}
	for _, f := range []float64{0.5e9, 1.1e9, 1.4e9, 1.7e9, 2.5e9, 4e9} {
		eStatic, _ := sub.StaticParams(w50)
		alphaNp := sub.AlphaConductor(w50, f) + sub.AlphaDielectric(w50, f, true)
		t.AddRow(
			fmt.Sprintf("%.1f", f/1e9),
			fmt.Sprintf("%.1f", lIn.Q(f)),
			fmt.Sprintf("%.3f", lIn.ESR(f)),
			fmt.Sprintf("%.0f", cOut.Q(f)),
			fmt.Sprintf("%.3f", cOut.ESR(f)),
			fmt.Sprintf("%.3f", sub.EpsEff(w50, f, true)),
			fmt.Sprintf("%.3f", eStatic),
			fmt.Sprintf("%.2f", alphaNp*8.686),
		)
	}

	// Ablation: what would an ideal-element analysis have predicted?
	idealBuilder := *d.Builder
	idealBuilder.IdealPassives = true
	idealAmp, err := idealBuilder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	realAmp, err := d.Builder.Build(res.Snapped)
	if err != nil {
		return Table{}, err
	}
	const f0 = 1.4e9
	mi, err := idealAmp.MetricsAt(f0, 50)
	if err != nil {
		return Table{}, err
	}
	mr, err := realAmp.MetricsAt(f0, 50)
	if err != nil {
		return Table{}, err
	}
	t.Notes += fmt.Sprintf("; ablation at 1.4 GHz: ideal passives predict NF %.3f dB / GT %.2f dB, "+
		"dispersive models %.3f dB / %.2f dB (the difference is the error a "+
		"textbook lossless design would hide)", mi.NFdB, mi.GTdB, mr.NFdB, mr.GTdB)
	return t, nil
}
