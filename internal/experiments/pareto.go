package experiments

import (
	"fmt"
	"math"

	"gnsslna/internal/core"
	"gnsslna/internal/mathx"
	"gnsslna/internal/optim"
)

// paretoObjective builds the bi-objective (NF dB, -GT dB) evaluation at the
// band center used by the Pareto method comparison. Unstable or unusable
// designs are pushed far from the front.
func (s *Suite) paretoObjective() (optim.VectorObjective, error) {
	d, err := s.Designer()
	if err != nil {
		return nil, err
	}
	const f0 = 1.4e9
	return func(x []float64) []float64 {
		amp, err := d.Builder.Build(core.DesignFromVector(x))
		if err != nil {
			return []float64{99, 99}
		}
		m, err := amp.MetricsAt(f0, 50)
		if err != nil {
			return []float64{99, 99}
		}
		nf, ngt := m.NFdB, -m.GTdB
		if m.Mu <= 1 {
			nf += 10
			ngt += 10
		}
		return []float64{nf, ngt}
	}, nil
}

// e4Budget returns the per-ray optimizer budget.
func (s *Suite) e4Budget() *optim.AttainOptions {
	if s.cfg.Quick {
		return &optim.AttainOptions{Seed: s.cfg.seed(), GlobalEvals: 700, PolishEvals: 400, Observer: s.obs(), Scope: "e4.attain"}
	}
	return &optim.AttainOptions{Seed: s.cfg.seed(), GlobalEvals: 2000, PolishEvals: 1200, Observer: s.obs(), Scope: "e4.attain"}
}

// E4GoalAttainment reproduces the Pareto-front figure: the improved
// goal-attainment method against the standard formulation, the weighted-sum
// baseline and NSGA-II, on the noise-versus-gain trade-off at 1.4 GHz.
// The table reports the front metrics of each method.
func (s *Suite) E4GoalAttainment() (Table, error) {
	obj, err := s.paretoObjective()
	if err != nil {
		return Table{}, err
	}
	lo, hi := core.DesignBounds()
	// Reference point for hypervolume: NF 2 dB, gain 8 dB.
	ref := [2]float64{2.0, -8.0}
	rays := []float64{0.1, 0.25, 0.5, 1, 2, 4, 10}
	utopia := []optim.Goal{
		{Name: "NF", Target: 0.15, Weight: 1},
		{Name: "-GT", Target: -24, Weight: 1},
	}

	runRays := func(solver func(goals []optim.Goal) (optim.AttainResult, error)) ([][]float64, int, float64, error) {
		var front [][]float64
		evals := 0
		var attErr []float64
		for _, w := range rays {
			goals := append([]optim.Goal(nil), utopia...)
			goals[0].Weight = w
			res, err := solver(goals)
			if err != nil {
				return nil, 0, 0, err
			}
			front = append(front, res.F)
			evals += res.Evals
			attErr = append(attErr, optim.AttainmentError(res.F, goals))
		}
		return front, evals, mathx.Mean(attErr), nil
	}

	t := Table{
		ID:      "E4",
		Title:   "Pareto-front methods on the NF-vs-GT trade-off at 1.4 GHz",
		Columns: []string{"method", "points", "hypervolume", "spread", "evals", "mean attain err"},
		Notes: "hypervolume against reference (NF 2 dB, GT 8 dB), higher is better; " +
			"spread lower is better; attainment error only defined for goal methods",
	}

	// Improved goal attainment.
	var impFront [][]float64
	{
		i := 0
		front, evals, att, err := runRays(func(goals []optim.Goal) (optim.AttainResult, error) {
			opts := s.e4Budget()
			opts.Seed = s.cfg.seed() + int64(i)
			i++
			return optim.GoalAttainImproved(obj, goals, lo, hi, opts)
		})
		if err != nil {
			return Table{}, fmt.Errorf("E4 improved: %w", err)
		}
		impFront = front
		t.AddRow("goal attainment (improved)",
			fmt.Sprintf("%d", len(front)),
			fmt.Sprintf("%.3f", optim.Hypervolume2D(front, ref)),
			fmt.Sprintf("%.3f", optim.Spread(front)),
			fmt.Sprintf("%d", evals),
			fmt.Sprintf("%.3f", att))
	}

	// Standard goal attainment.
	{
		i := 0
		front, evals, att, err := runRays(func(goals []optim.Goal) (optim.AttainResult, error) {
			opts := s.e4Budget()
			opts.Seed = s.cfg.seed() + int64(i)
			i++
			return optim.GoalAttainStandard(obj, goals, lo, hi, opts)
		})
		if err != nil {
			return Table{}, fmt.Errorf("E4 standard: %w", err)
		}
		t.AddRow("goal attainment (standard)",
			fmt.Sprintf("%d", len(front)),
			fmt.Sprintf("%.3f", optim.Hypervolume2D(front, ref)),
			fmt.Sprintf("%.3f", optim.Spread(front)),
			fmt.Sprintf("%d", evals),
			fmt.Sprintf("%.3f", att))
	}

	// Weighted sum baseline.
	{
		var front [][]float64
		evals := 0
		for i, w := range rays {
			alpha := w / (1 + w)
			opts := s.e4Budget()
			opts.Seed = s.cfg.seed() + int64(i)
			res, err := optim.WeightedSum(obj, []float64{alpha, 1 - alpha}, lo, hi, opts)
			if err != nil {
				return Table{}, fmt.Errorf("E4 weighted sum: %w", err)
			}
			front = append(front, res.F)
			evals += res.Evals
		}
		t.AddRow("weighted sum",
			fmt.Sprintf("%d", len(front)),
			fmt.Sprintf("%.3f", optim.Hypervolume2D(front, ref)),
			fmt.Sprintf("%.3f", optim.Spread(front)),
			fmt.Sprintf("%d", evals),
			"-")
	}

	// NSGA-II baseline.
	{
		pop, gens := 48, 40
		if s.cfg.Quick {
			pop, gens = 32, 20
		}
		res, err := optim.NSGA2(obj, lo, hi, &optim.NSGA2Options{
			Pop: pop, Generations: gens, Seed: s.cfg.seed(),
			Observer: s.obs(), Scope: "e4.nsga2",
		})
		if err != nil {
			return Table{}, fmt.Errorf("E4 NSGA-II: %w", err)
		}
		t.AddRow("NSGA-II",
			fmt.Sprintf("%d", len(res.F)),
			fmt.Sprintf("%.3f", optim.Hypervolume2D(res.F, ref)),
			fmt.Sprintf("%.3f", optim.Spread(res.F)),
			fmt.Sprintf("%d", res.Evals),
			"-")
	}

	// Sanity guard: the improved front must contain finite, dominated-box
	// points; otherwise the experiment is meaningless.
	ok := 0
	for _, f := range impFront {
		if f[0] < ref[0] && f[1] < ref[1] && !math.IsInf(f[0], 0) {
			ok++
		}
	}
	if ok == 0 {
		return Table{}, fmt.Errorf("E4: improved goal attainment produced no in-box front points")
	}
	return t, nil
}
