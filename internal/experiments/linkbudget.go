package experiments

import (
	"fmt"

	"gnsslna/internal/core"
)

// E12LinkBudget is an extension experiment: the system-level payoff of the
// optimized preamplifier — receive-system noise temperature and C/N0
// improvement across cable runs, the figure of merit a GNSS installation
// actually cares about.
func (s *Suite) E12LinkBudget() (Table, error) {
	res, err := s.Design()
	if err != nil {
		return Table{}, err
	}
	nf := res.SnappedEval.WorstNFdB
	gt := res.SnappedEval.MinGTdB
	t := Table{
		ID:    "E12 (extension)",
		Title: "receive-chain link budget with and without the preamplifier",
		Columns: []string{
			"cable [dB]", "Tsys bare [K]", "Tsys w/LNA [K]",
			"C/N0 gain [dB]", "C/N0 L1 C/A [dB-Hz]",
		},
		Notes: fmt.Sprintf("LNA: NF %.3f dB, gain %.2f dB (band worst case); antenna 100 K, "+
			"receiver NF 8 dB; L1 C/A signal -128.5 dBm", nf, gt),
	}
	for _, cable := range []float64{1, 2, 4, 6, 10} {
		lb := core.LinkBudget{AntennaTempK: 100, CableLossDB: cable, ReceiverNFdB: 8}
		t.AddRow(
			fmt.Sprintf("%.0f", cable),
			fmt.Sprintf("%.0f", lb.SystemNoiseTemp(false, 0, 0)),
			fmt.Sprintf("%.0f", lb.SystemNoiseTemp(true, nf, gt)),
			fmt.Sprintf("%.2f", lb.CN0ImprovementDB(nf, gt)),
			fmt.Sprintf("%.1f", lb.CN0DBHz(-128.5, true, nf, gt)),
		)
	}
	return t, nil
}
