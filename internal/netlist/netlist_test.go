package netlist

import (
	"math"
	"math/cmplx"
	"strconv"
	"strings"
	"testing"
)

func TestParseAndRunAttenuator(t *testing.T) {
	// The 6 dB tee attenuator as a netlist must match the algebraic result.
	src := `* 6 dB tee attenuator
R1 in  m  16.61
R2 m   out 16.61
R3 m   0  66.93
.ac lin 1G 2G 3
.ports in out
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Title != "6 dB tee attenuator" {
		t.Errorf("title = %q", d.Title)
	}
	net, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if net.Len() != 3 {
		t.Fatalf("points = %d", net.Len())
	}
	for i := range net.S {
		loss := -20 * math.Log10(cmplx.Abs(net.S[i][1][0]))
		if math.Abs(loss-6) > 0.02 {
			t.Errorf("point %d: loss %.3f dB, want 6", i, loss)
		}
		if cmplx.Abs(net.S[i][0][0]) > 0.01 {
			t.Errorf("point %d: |S11| = %g, want ~0", i, cmplx.Abs(net.S[i][0][0]))
		}
	}
}

func TestParseLCFilterShape(t *testing.T) {
	// A series-L shunt-C lowpass must pass low frequencies and block high.
	src := `* LC lowpass
L1 in  mid 8n
C1 mid 0   3p
R1 mid out 0.001
.ac lin 0.2G 6G 30
.ports in out
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	net, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	lowGain := cmplx.Abs(net.S[0][1][0])
	highGain := cmplx.Abs(net.S[net.Len()-1][1][0])
	if lowGain < 0.7 {
		t.Errorf("passband |S21| = %g, want near 1", lowGain)
	}
	if highGain > lowGain/3 {
		t.Errorf("stopband |S21| = %g not attenuated vs %g", highGain, lowGain)
	}
}

func TestParseVCCSAmplifier(t *testing.T) {
	// A VCCS with input/output 50-ohm resistors behaves as a gain stage.
	src := `* vccs amp
R1 in  0 50
G1 out 0 in 0 0.08
R2 out 0 50
.ac lin 1G 2G 2
.ports in out
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	net, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if g := cmplx.Abs(net.S[0][1][0]); g < 1 {
		t.Errorf("|S21| = %g, want gain > 1", g)
	}
}

func TestParseTransmissionLine(t *testing.T) {
	// A quarter-wave 100-ohm line at 1.5 GHz transforms a 50-ohm port; at
	// the design frequency |S11| peaks, at DC-ish frequencies it vanishes.
	const c0 = 299792458.0
	quarter := c0 / (4 * 1.5e9) // eps = 1
	src := `* line
T1 in out Z0=100 LEN=` + formatLen(quarter) + ` EPS=1
.ac lin 0.1G 1.5G 15
.ports in out
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	net, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	first := cmplx.Abs(net.S[0][0][0])
	last := cmplx.Abs(net.S[net.Len()-1][0][0])
	if last <= first {
		t.Errorf("|S11| should peak at quarter-wave: %g -> %g", first, last)
	}
	// Quarter-wave transformer of Z0=100 on 50-ohm ports: Zin = 200,
	// S11 = 150/250 = 0.6.
	if math.Abs(last-0.6) > 0.01 {
		t.Errorf("quarter-wave |S11| = %g, want 0.6", last)
	}
}

func formatLen(l float64) string {
	return strconv.FormatFloat(l, 'f', 9, 64)
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown element": "X1 a b 5\n",
		"bad value":       "R1 a b zz\n",
		"neg value":       "R1 a b -5\n",
		"short R":         "R1 a b\n",
		"bad vccs":        "G1 a b c 0.1\n",
		"bad line param":  "T1 a b Q=5 LEN=1m\n",
		"line no len":     "T1 a b Z0=50 EPS=2\n",
		"bad ac":          ".ac lin 1G 2G\n",
		"ac range":        ".ac lin 2G 1G 5\n",
		"unknown card":    ".foo\n",
		"short ports":     ".ports a\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
	// A deck without .ac or .ports parses but cannot run.
	d, err := Parse(strings.NewReader("R1 a 0 50\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := d.Run(); err == nil {
		t.Error("deck without sweep cards ran")
	}
}
