// Package netlist parses a SPICE-flavored text netlist into the AC
// modified-nodal-analysis engine, making the simulator usable on arbitrary
// circuits without writing Go:
//
//   - GNSS input match          <- title/comment lines start with * or ;
//     R1 in  n1 50
//     L1 n1  n2 5.6n
//     C1 n2  0  1.5p
//     G1 n2 0 out 0 0.08         <- VCCS: out-nodes then control-nodes, gm
//     T1 n2 out Z0=50 LEN=12m EPS=2.9  <- ideal line
//     .ac lin 1.1G 1.7G 13
//     .ports in out
//
// Component values accept engineering suffixes (p, n, u, m, k, M, G) via
// the units package.
package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"gnsslna/internal/mathx"
	"gnsslna/internal/mna"
	"gnsslna/internal/twoport"
	"gnsslna/internal/units"
)

// ErrSyntax reports an unparsable netlist line.
var ErrSyntax = errors.New("netlist: syntax error")

// Deck is a parsed netlist ready to simulate.
type Deck struct {
	// Title is the leading comment, if any.
	Title string
	// Circuit is the assembled MNA circuit.
	Circuit *mna.Circuit
	// Freqs is the .ac sweep grid (nil if the card is absent).
	Freqs []float64
	// PortIn and PortOut are the .ports nodes ("" if absent).
	PortIn, PortOut string
}

// Parse reads a netlist deck.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{Circuit: mna.New()}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "*") || strings.HasPrefix(line, ";") {
			if d.Title == "" {
				d.Title = strings.TrimSpace(strings.TrimLeft(line, "*; "))
			}
			continue
		}
		if err := d.parseLine(line); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return d, nil
}

func (d *Deck) parseLine(line string) error {
	fields := strings.Fields(line)
	card := strings.ToUpper(fields[0])
	switch {
	case strings.HasPrefix(card, ".AC"):
		return d.parseAC(fields)
	case strings.HasPrefix(card, ".PORTS"):
		if len(fields) != 3 {
			return fmt.Errorf("%w: .ports wants two nodes", ErrSyntax)
		}
		d.PortIn, d.PortOut = fields[1], fields[2]
		return nil
	case strings.HasPrefix(card, "."):
		return fmt.Errorf("%w: unknown card %q", ErrSyntax, fields[0])
	case card[0] == 'R':
		return d.parseTwoNode(fields, func(a, b string, v float64) { d.Circuit.AddR(a, b, v) })
	case card[0] == 'C':
		return d.parseTwoNode(fields, func(a, b string, v float64) { d.Circuit.AddC(a, b, v) })
	case card[0] == 'L':
		return d.parseTwoNode(fields, func(a, b string, v float64) { d.Circuit.AddL(a, b, v) })
	case card[0] == 'G':
		return d.parseVCCS(fields)
	case card[0] == 'T':
		return d.parseLineCard(fields)
	default:
		return fmt.Errorf("%w: unknown element %q", ErrSyntax, fields[0])
	}
}

func (d *Deck) parseTwoNode(fields []string, add func(a, b string, v float64)) error {
	if len(fields) != 4 {
		return fmt.Errorf("%w: %s wants <name> <n1> <n2> <value>", ErrSyntax, fields[0])
	}
	v, err := units.Parse(fields[3])
	if err != nil {
		return fmt.Errorf("%w: value %q", ErrSyntax, fields[3])
	}
	if v <= 0 {
		return fmt.Errorf("%w: non-positive value %q", ErrSyntax, fields[3])
	}
	add(fields[1], fields[2], v)
	return nil
}

func (d *Deck) parseVCCS(fields []string) error {
	if len(fields) != 6 {
		return fmt.Errorf("%w: G wants <name> <out+> <out-> <c+> <c-> <gm>", ErrSyntax)
	}
	gm, err := units.Parse(fields[5])
	if err != nil {
		return fmt.Errorf("%w: gm %q", ErrSyntax, fields[5])
	}
	d.Circuit.AddVCCS(fields[3], fields[4], fields[1], fields[2], gm, 0)
	return nil
}

func (d *Deck) parseLineCard(fields []string) error {
	if len(fields) < 5 {
		return fmt.Errorf("%w: T wants <name> <n1> <n2> Z0=.. LEN=.. [EPS=..] [LOSS=..]", ErrSyntax)
	}
	z0, length, eps, loss := 50.0, 0.0, 1.0, 0.0
	for _, f := range fields[3:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("%w: expected key=value, got %q", ErrSyntax, f)
		}
		v, err := units.Parse(kv[1])
		if err != nil {
			return fmt.Errorf("%w: %q", ErrSyntax, f)
		}
		switch strings.ToUpper(kv[0]) {
		case "Z0":
			z0 = v
		case "LEN":
			length = v
		case "EPS":
			eps = v
		case "LOSS": // dB/m
			loss = v
		default:
			return fmt.Errorf("%w: unknown line parameter %q", ErrSyntax, kv[0])
		}
	}
	if length <= 0 || z0 <= 0 || eps < 1 {
		return fmt.Errorf("%w: line needs positive Z0/LEN and EPS >= 1", ErrSyntax)
	}
	const c0 = 299792458.0
	alpha := loss / 8.686 // Np/m
	d.Circuit.AddLine(fields[1], fields[2],
		func(float64) complex128 { return complex(z0, 0) },
		func(f float64) complex128 {
			return complex(alpha, 2*math.Pi*f*math.Sqrt(eps)/c0)
		},
		length)
	return nil
}

func (d *Deck) parseAC(fields []string) error {
	// .ac lin f1 f2 n
	if len(fields) != 5 || strings.ToLower(fields[1]) != "lin" && strings.ToLower(fields[1]) != "log" {
		return fmt.Errorf("%w: .ac wants lin|log <f1> <f2> <n>", ErrSyntax)
	}
	f1, err := units.Parse(fields[2])
	if err != nil {
		return fmt.Errorf("%w: %q", ErrSyntax, fields[2])
	}
	f2, err := units.Parse(fields[3])
	if err != nil {
		return fmt.Errorf("%w: %q", ErrSyntax, fields[3])
	}
	n, err := strconv.Atoi(fields[4])
	if err != nil || n < 2 {
		return fmt.Errorf("%w: point count %q", ErrSyntax, fields[4])
	}
	if f2 <= f1 || f1 <= 0 {
		return fmt.Errorf("%w: sweep range [%g, %g]", ErrSyntax, f1, f2)
	}
	if strings.ToLower(fields[1]) == "log" {
		d.Freqs = mathx.Logspace(f1, f2, n)
	} else {
		d.Freqs = mathx.Linspace(f1, f2, n)
	}
	return nil
}

// Run executes the deck's .ac sweep between its .ports and returns the
// S-parameter network at 50 ohm.
func (d *Deck) Run() (*twoport.Network, error) {
	if len(d.Freqs) == 0 {
		return nil, errors.New("netlist: deck has no .ac card")
	}
	if d.PortIn == "" || d.PortOut == "" {
		return nil, errors.New("netlist: deck has no .ports card")
	}
	return d.Circuit.SParams2(d.Freqs, d.PortIn, d.PortOut, 50)
}
