package noise

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestFigureFormulaAgainstDefinition(t *testing.T) {
	p := Params{Fmin: 1.25, Rn: 20, GammaOpt: cmplx.Rect(0.5, 0.7), Z0: 50}
	// At the optimum the figure equals Fmin.
	if got := p.Figure(p.GammaOpt); !mathx.CloseRel(got, p.Fmin, 1e-12) {
		t.Errorf("F(GammaOpt) = %g, want %g", got, p.Fmin)
	}
	// Against a 50-ohm source compute by the explicit Y formula.
	ys := complex(1.0/50, 0)
	d := ys - p.YOpt()
	want := p.Fmin + p.Rn/real(ys)*(real(d)*real(d)+imag(d)*imag(d))
	if got := p.Figure(0); !mathx.CloseRel(got, want, 1e-12) {
		t.Errorf("F(0) = %g, want %g", got, want)
	}
	if p.FigureDB(p.GammaOpt) != mathx.DB10(p.Fmin) {
		t.Error("FigureDB inconsistent with Figure")
	}
	if !mathx.CloseRel(p.Te(), (p.Fmin-1)*290, 1e-12) {
		t.Error("Te inconsistent")
	}
	if p.FminDB() != mathx.DB10(p.Fmin) {
		t.Error("FminDB inconsistent")
	}
}

func TestFigureUnphysicalSource(t *testing.T) {
	p := Params{Fmin: 1.2, Rn: 10, GammaOpt: 0, Z0: 50}
	if f := p.FigureY(complex(-0.01, 0)); !math.IsInf(f, 1) {
		t.Errorf("negative-conductance source F = %g, want +Inf", f)
	}
}

func TestNoiseCircleLocus(t *testing.T) {
	p := Params{Fmin: 1.3, Rn: 15, GammaOpt: cmplx.Rect(0.45, -0.6), Z0: 50}
	target := 1.6 // linear
	c, err := p.Circle(target)
	if err != nil {
		t.Fatalf("Circle: %v", err)
	}
	for k := 0; k < 12; k++ {
		th := float64(k) / 12 * 2 * math.Pi
		g := c.Center + cmplx.Rect(c.Radius, th)
		if cmplx.Abs(g) >= 1 {
			continue
		}
		if f := p.Figure(g); math.Abs(f-target) > 1e-9 {
			t.Errorf("on-circle figure = %g, want %g", f, target)
		}
	}
	// The Fmin circle degenerates to the point GammaOpt.
	c0, err := p.Circle(p.Fmin)
	if err != nil {
		t.Fatalf("Circle(Fmin): %v", err)
	}
	if c0.Radius > 1e-9 || cmplx.Abs(c0.Center-p.GammaOpt) > 1e-9 {
		t.Errorf("Fmin circle = %+v, want point at GammaOpt", c0)
	}
	if _, err := p.Circle(1.0); err == nil {
		t.Error("circle below Fmin accepted")
	}
}

func TestFriis(t *testing.T) {
	// Classic example: F1 = 2 (3 dB), G1 = 10; F2 = 10; total = 2.9.
	got := Friis([]float64{2, 10}, []float64{10, 1})
	if !mathx.Close(got, 2.9, 1e-12) {
		t.Errorf("Friis = %g, want 2.9", got)
	}
	if Friis(nil, nil) != 1 {
		t.Error("empty Friis must be 1")
	}
	// High first-stage gain makes later stages irrelevant.
	f := Friis([]float64{1.2, 100}, []float64{1e6, 1})
	if math.Abs(f-1.2) > 1e-3 {
		t.Errorf("high-gain Friis = %g, want ~1.2", f)
	}
}

func TestNoiseMeasure(t *testing.T) {
	if m := Measure(2, 10); !mathx.Close(m, 1.0/0.9, 1e-12) {
		t.Errorf("Measure = %g, want %g", m, 1.0/0.9)
	}
	if !math.IsInf(Measure(2, 1), 1) {
		t.Error("Measure with GA <= 1 must be +Inf")
	}
	// The noise measure equals F-1 of an infinite cascade of identical
	// stages: M = F_inf - 1 where F_inf = Friis limit.
	f, g := 1.8, 4.0
	fs := make([]float64, 30)
	gs := make([]float64, 30)
	for i := range fs {
		fs[i], gs[i] = f, g
	}
	finf := Friis(fs, gs)
	if math.Abs((finf-1)-Measure(f, g)) > 1e-9 {
		t.Errorf("infinite cascade F-1 = %g, Measure = %g", finf-1, Measure(f, g))
	}
}

func TestYOptMatchesGammaOpt(t *testing.T) {
	p := Params{Fmin: 1.5, Rn: 10, GammaOpt: complex(0.2, 0.3), Z0: 50}
	z := twoport.ZFromGamma(p.GammaOpt, 50)
	if cmplx.Abs(p.YOpt()-1/z) > 1e-15 {
		t.Error("YOpt inconsistent with GammaOpt")
	}
}
