package noise

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

const z0 = 50.0

// attenuatorABCD returns the chain matrix of a matched resistive tee
// attenuator with the given loss in dB at Z0 = 50.
func attenuatorABCD(db float64) twoport.Mat2 {
	a := math.Pow(10, db/20)
	r1 := z0 * (a - 1) / (a + 1)
	r2 := z0 * 2 * a / (a*a - 1)
	return twoport.SeriesZ(complex(r1, 0)).
		Mul(twoport.ShuntY(complex(1/r2, 0))).
		Mul(twoport.SeriesZ(complex(r1, 0)))
}

func TestAttenuatorNoiseFigureEqualsLoss(t *testing.T) {
	// The fundamental thermodynamic check: a matched attenuator at T0 has
	// F = L exactly.
	for _, db := range []float64{1, 3, 6, 10, 20} {
		tp, err := PassiveFromABCD(attenuatorABCD(db), mathx.T0)
		if err != nil {
			t.Fatalf("%g dB: %v", db, err)
		}
		f := tp.FigureY(1 / complex(z0, 0))
		if got := mathx.DB10(f); math.Abs(got-db) > 1e-9 {
			t.Errorf("%g dB attenuator: NF = %g dB, want %g", db, got, db)
		}
	}
}

func TestColdAttenuatorQuieter(t *testing.T) {
	// An attenuator at 77 K must contribute proportionally less noise:
	// F = 1 + (L-1)*T/T0.
	const db = 6.0
	l := mathx.FromDB10(db)
	for _, temp := range []float64{77, 150, 290, 400} {
		tp, err := PassiveFromABCD(attenuatorABCD(db), temp)
		if err != nil {
			t.Fatalf("temp %g: %v", temp, err)
		}
		got := tp.FigureY(1 / complex(z0, 0))
		want := 1 + (l-1)*temp/mathx.T0
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("T=%g K: F = %g, want %g", temp, got, want)
		}
	}
}

func TestCascadeOfAttenuatorsMultipliesLoss(t *testing.T) {
	a3, err := PassiveFromABCD(attenuatorABCD(3), mathx.T0)
	if err != nil {
		t.Fatal(err)
	}
	a7, err := PassiveFromABCD(attenuatorABCD(7), mathx.T0)
	if err != nil {
		t.Fatal(err)
	}
	casc := a3.Cascade(a7)
	f := casc.FigureY(1 / complex(z0, 0))
	if got := mathx.DB10(f); math.Abs(got-10) > 1e-9 {
		t.Errorf("3+7 dB cascade NF = %g dB, want 10", got)
	}
	// And the cascaded S21 must show 10 dB loss.
	s, err := casc.S(z0)
	if err != nil {
		t.Fatal(err)
	}
	if got := -mathx.DB20(cmplx.Abs(s[1][0])); math.Abs(got-10) > 1e-9 {
		t.Errorf("cascade loss = %g dB, want 10", got)
	}
}

func TestFriisAgreesWithCorrelationCascade(t *testing.T) {
	// Passive stage + synthetic amplifier stage, matched interfaces: the
	// correlation-matrix cascade must reproduce Friis.
	const attDB = 2.0
	att, err := PassiveFromABCD(attenuatorABCD(attDB), mathx.T0)
	if err != nil {
		t.Fatal(err)
	}
	// A matched unilateral amplifier: S = [[0,0],[g,0]] has ABCD form only
	// approximately; construct from Y parameters of a VCCS with matched
	// input/output resistors.
	gm := 0.2 // 10x voltage gain into 50 ohms
	y := twoport.Mat2{
		{complex(1/z0, 0), 0},
		{complex(gm, 0), complex(1/z0, 0)},
	}
	// Give it known noise parameters.
	amp, err := twoport.YToABCD(y)
	if err != nil {
		t.Fatal(err)
	}
	pAmp := Params{Fmin: 2.0, Rn: 15, GammaOpt: 0, Z0: z0}
	ampN := FromNoiseParams(amp, pAmp)

	fAmp := ampN.FigureY(1 / complex(z0, 0))
	casc := att.Cascade(ampN)
	fTot := casc.FigureY(1 / complex(z0, 0))

	l := mathx.FromDB10(attDB)
	// Friis with stage1 = attenuator (F = L, GA = 1/L).
	want := Friis([]float64{l, fAmp}, []float64{1 / l, 1})
	if math.Abs(fTot-want) > 1e-9 {
		t.Errorf("cascade F = %g, Friis predicts %g", fTot, want)
	}
}

func TestNoiseParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		p := Params{
			Fmin:     1 + rng.Float64()*2,
			Rn:       5 + rng.Float64()*45,
			GammaOpt: cmplx.Rect(rng.Float64()*0.7, rng.Float64()*2*math.Pi),
			Z0:       z0,
		}
		a := attenuatorABCD(3) // any chain matrix will do
		tp := FromNoiseParams(a, p)
		got, err := tp.NoiseParams(z0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !mathx.CloseRel(got.Fmin, p.Fmin, 1e-9) {
			t.Errorf("trial %d: Fmin %g != %g", trial, got.Fmin, p.Fmin)
		}
		if !mathx.CloseRel(got.Rn, p.Rn, 1e-9) {
			t.Errorf("trial %d: Rn %g != %g", trial, got.Rn, p.Rn)
		}
		if cmplx.Abs(got.GammaOpt-p.GammaOpt) > 1e-8 {
			t.Errorf("trial %d: GammaOpt %v != %v", trial, got.GammaOpt, p.GammaOpt)
		}
	}
}

func TestRepresentationRoundTrips(t *testing.T) {
	// CY -> CA -> CY and CZ round trips on random physical matrices.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		// Random passive-ish admittance with positive-definite Hermitian part.
		y := twoport.Mat2{
			{complex(1+rng.Float64(), rng.NormFloat64()), complex(-rng.Float64(), rng.NormFloat64())},
			{complex(-rng.Float64(), rng.NormFloat64()), complex(1+rng.Float64(), rng.NormFloat64())},
		}
		y = y.Scale(complex(0.02, 0))
		cy := twoport.Mat2{
			{y[0][0] + cmplx.Conj(y[0][0]), y[0][1] + cmplx.Conj(y[1][0])},
			{y[1][0] + cmplx.Conj(y[0][1]), y[1][1] + cmplx.Conj(y[1][1])},
		}.Scale(0.5)
		tp, err := FromY(y, cy)
		if err != nil {
			continue
		}
		y2, cy2, err := tp.ToY()
		if err != nil {
			t.Fatalf("trial %d: ToY: %v", trial, err)
		}
		if d := twoport.MaxAbsDiff(y, y2); d > 1e-10 {
			t.Fatalf("trial %d: Y round trip diff %g", trial, d)
		}
		if d := twoport.MaxAbsDiff(cy, cy2); d > 1e-10 {
			t.Fatalf("trial %d: CY round trip diff %g", trial, d)
		}
		z, cz, err := tp.ToZ()
		if err != nil {
			t.Fatalf("trial %d: ToZ: %v", trial, err)
		}
		tp2, err := FromZ(z, cz)
		if err != nil {
			t.Fatalf("trial %d: FromZ: %v", trial, err)
		}
		if d := twoport.MaxAbsDiff(tp.CA, tp2.CA); d > 1e-9 {
			t.Fatalf("trial %d: CA via Z round trip diff %g", trial, d)
		}
	}
}

func TestSeriesShuntElementNoise(t *testing.T) {
	// A series resistor in front of a matched termination forms an L-pad;
	// verify against the exact passive formula by building it both ways.
	r := complex(25, 0)
	viaElement := SeriesZ(r, mathx.T0)
	viaPassive, err := PassiveFromABCD(
		twoport.SeriesZ(r).Mul(twoport.ShuntY(complex(1e-12, 0))), mathx.T0)
	if err != nil {
		t.Fatal(err)
	}
	ys := 1 / complex(z0, 0)
	f1 := viaElement.FigureY(ys)
	f2 := viaPassive.FigureY(ys)
	if math.Abs(f1-f2) > 1e-6 {
		t.Errorf("series-R noise figure: element %g vs passive %g", f1, f2)
	}
	// Lossless elements are noiseless: series reactance adds no noise.
	lossless := SeriesZ(complex(0, 40), mathx.T0)
	if f := lossless.FigureY(ys); math.Abs(f-1) > 1e-12 {
		t.Errorf("lossless series element F = %g, want 1", f)
	}
	losslessShunt := ShuntY(complex(0, 0.01), mathx.T0)
	if f := losslessShunt.FigureY(ys); math.Abs(f-1) > 1e-12 {
		t.Errorf("lossless shunt element F = %g, want 1", f)
	}
}

func TestLosslessEmbeddingPreservesFmin(t *testing.T) {
	// A lossless input network transforms GammaOpt but leaves Fmin intact.
	dev := FromNoiseParams(attenuatorABCD(3), Params{
		Fmin: 1.35, Rn: 9, GammaOpt: cmplx.Rect(0.4, 1.0), Z0: z0,
	})
	line := Noiseless(twoport.LineABCD(complex(z0, 0), complex(0, 4.2), 0.21))
	emb := line.Cascade(dev)
	p0, err := dev.NoiseParams(z0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := emb.NoiseParams(z0)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.CloseRel(p1.Fmin, p0.Fmin, 1e-9) {
		t.Errorf("Fmin changed under lossless embedding: %g -> %g", p0.Fmin, p1.Fmin)
	}
	if cmplx.Abs(p1.GammaOpt-p0.GammaOpt) < 1e-6 {
		t.Error("GammaOpt should move under a non-trivial line embedding")
	}
}

func TestFigureAtOptimumIsFmin(t *testing.T) {
	p := Params{Fmin: 1.4, Rn: 12, GammaOpt: cmplx.Rect(0.35, -0.8), Z0: z0}
	tp := FromNoiseParams(attenuatorABCD(1), p)
	got := tp.Figure(p.GammaOpt, z0)
	if !mathx.CloseRel(got, p.Fmin, 1e-9) {
		t.Errorf("F(GammaOpt) = %g, want Fmin = %g", got, p.Fmin)
	}
	// Any other source must be noisier.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		g := cmplx.Rect(rng.Float64()*0.9, rng.Float64()*2*math.Pi)
		if f := tp.Figure(g, z0); f < p.Fmin-1e-12 {
			t.Fatalf("F(%v) = %g below Fmin %g", g, f, p.Fmin)
		}
	}
}

func TestNoiseParamsNotPhysical(t *testing.T) {
	bad := TwoPort{
		A:  attenuatorABCD(1),
		CA: twoport.Mat2{{complex(-1, 0), 0}, {0, 0}},
	}
	if _, err := bad.NoiseParams(z0); err == nil {
		t.Error("negative Rn accepted as physical")
	}
}

func TestFriisApproximationErrorUnderMismatch(t *testing.T) {
	// DESIGN.md ablation: the Friis formula assumes each stage sees the
	// source impedance its noise figure was specified for. With a badly
	// mismatched interstage the exact correlation-matrix cascade deviates
	// from naive Friis; this quantifies why the design flow carries full
	// correlation matrices instead.
	mk := func(gm float64, p Params) TwoPort {
		y := twoport.Mat2{
			{complex(1.0/200, 0), 0}, // deliberately mismatched input
			{complex(gm, 0), complex(1.0/40, 0)},
		}
		a, err := twoport.YToABCD(y)
		if err != nil {
			t.Fatal(err)
		}
		return FromNoiseParams(a, p)
	}
	stage1 := mk(0.08, Params{Fmin: 1.25, Rn: 20, GammaOpt: 0.4 + 0.2i, Z0: z0})
	stage2 := mk(0.08, Params{Fmin: 2.2, Rn: 35, GammaOpt: -0.3 + 0.1i, Z0: z0})

	exact := stage1.Cascade(stage2).FigureY(1 / complex(z0, 0))
	f1 := stage1.FigureY(1 / complex(z0, 0))
	s1, err := stage1.S(z0)
	if err != nil {
		t.Fatal(err)
	}
	ga1 := twoport.AvailableGain(s1, 0)
	f2 := stage2.FigureY(1 / complex(z0, 0)) // naive: 50-ohm F for stage 2
	naive := Friis([]float64{f1, f2}, []float64{ga1, 1})

	// The naive estimate must differ measurably (the whole point) but not
	// absurdly (same order of magnitude).
	relErr := math.Abs(naive-exact) / exact
	if relErr < 0.005 {
		t.Errorf("Friis vs exact differ by only %.2f%%: fixture not mismatched enough", relErr*100)
	}
	if relErr > 0.5 {
		t.Errorf("Friis vs exact differ by %.0f%%: implausible fixture", relErr*100)
	}
	// And the exact cascade figure can never be below stage 1's.
	if exact < f1 {
		t.Errorf("exact cascade F %g below first stage %g", exact, f1)
	}
}
