package noise_test

import (
	"fmt"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

// ExampleTwoPort_Cascade demonstrates the thermodynamic identity that
// anchors the noise engine: a matched 3 dB attenuator at 290 K has a noise
// figure of exactly 3 dB, and two in cascade give 6 dB.
func ExampleTwoPort_Cascade() {
	a := mathx.FromDB20(3)
	r1 := 50 * (a - 1) / (a + 1)
	r2 := 50 * 2 * a / (a*a - 1)
	abcd := twoport.SeriesZ(complex(r1, 0)).
		Mul(twoport.ShuntY(complex(1/r2, 0))).
		Mul(twoport.SeriesZ(complex(r1, 0)))
	att, _ := noise.PassiveFromABCD(abcd, 290)
	one := att.FigureY(complex(1.0/50, 0))
	two := att.Cascade(att).FigureY(complex(1.0/50, 0))
	fmt.Printf("NF one = %.2f dB, two = %.2f dB\n", mathx.DB10(one), mathx.DB10(two))
	// Output:
	// NF one = 3.00 dB, two = 6.00 dB
}

// ExampleFriis reproduces the classic cascade formula.
func ExampleFriis() {
	total := noise.Friis([]float64{2, 10}, []float64{10, 1})
	fmt.Printf("F = %.2f\n", total)
	// Output:
	// F = 2.90
}
