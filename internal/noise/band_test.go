package noise

import (
	"math"
	"math/rand"
	"testing"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func randTwoPort(rng *rand.Rand) TwoPort {
	c := func() complex128 { return complex(rng.NormFloat64(), rng.NormFloat64()) }
	g := func() complex128 { return complex(math.Abs(rng.NormFloat64()), 0) }
	return TwoPort{
		A:  twoport.Mat2{{c(), c()}, {c(), c()}},
		CA: twoport.Mat2{{g(), c()}, {c(), g()}},
	}
}

// TestCascadeSeriesShuntExact pins the elementary noisy-cascade
// specializations to the generic Cascade under floating-point equality:
// for finite operands the surviving terms are computed by the identical
// scalar operations in the identical order, so == must hold.
func TestCascadeSeriesShuntExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 200; k++ {
		n := randTwoPort(rng)
		z := complex(math.Abs(rng.NormFloat64())*20, rng.NormFloat64()*30)
		temp := 200 + 200*rng.Float64()
		r := real(z) * temp / mathx.T0
		if got, want := n.CascadeSeries(z, r), n.Cascade(SeriesZ(z, temp)); got != want {
			t.Fatalf("CascadeSeries diverges from generic Cascade:\n got %+v\nwant %+v", got, want)
		}
		y := complex(math.Abs(rng.NormFloat64())*1e-3, rng.NormFloat64()*1e-2)
		g := real(y) * temp / mathx.T0
		if got, want := n.CascadeShunt(y, g), n.Cascade(ShuntY(y, temp)); got != want {
			t.Fatalf("CascadeShunt diverges from generic Cascade:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestCascadeBandAndSBandPointwise pins the slab loops to the per-point
// methods.
func TestCascadeBandAndSBandPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 12
	a := make([]TwoPort, n)
	b := make([]TwoPort, n)
	for i := range a {
		a[i], b[i] = randTwoPort(rng), randTwoPort(rng)
	}
	dst := make([]TwoPort, n)
	CascadeBand(dst, a, b)
	for i := range dst {
		if dst[i] != a[i].Cascade(b[i]) {
			t.Fatalf("CascadeBand[%d] diverges from Cascade", i)
		}
	}
	s := make([]twoport.Mat2, n)
	if err := SBand(s, a, 50); err != nil {
		t.Fatal(err)
	}
	for i := range s {
		want, err := a[i].S(50)
		if err != nil {
			t.Fatal(err)
		}
		if s[i] != want {
			t.Fatalf("SBand[%d] diverges from S", i)
		}
	}
}

// TestFinite exercises the non-finite guard the specialized cascades key on.
func TestFinite(t *testing.T) {
	var n TwoPort
	n.A = twoport.Mat2{{1, 2}, {3, 4}}
	if !n.Finite() {
		t.Error("finite chain matrix reported non-finite")
	}
	n.A[0][1] = complex(math.Inf(1), 0)
	if n.Finite() {
		t.Error("Inf entry reported finite")
	}
	n.A[0][1] = complex(0, math.NaN())
	if n.Finite() {
		t.Error("NaN entry reported finite")
	}
}
