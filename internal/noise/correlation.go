package noise

import (
	"fmt"
	"math"
	"math/cmplx"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// TwoPort is a noisy linear two-port: a deterministic network (chain/ABCD
// matrix A) plus its noise correlation matrix CA in the chain
// representation, normalized to 4*k*T0.
type TwoPort struct {
	// A is the chain (ABCD) matrix of the network.
	A twoport.Mat2
	// CA is the chain-representation noise correlation matrix / (4 k T0).
	CA twoport.Mat2
}

// Noiseless wraps a chain matrix with zero noise (an idealized or lossless
// network).
func Noiseless(a twoport.Mat2) TwoPort {
	return TwoPort{A: a}
}

// PassiveFromABCD builds the noisy two-port of a passive reciprocal network
// given its chain matrix and physical temperature in kelvin, via the
// thermodynamic relation CY = 4 k T Re(Y) (normalized: (T/T0) * Herm(Y)).
func PassiveFromABCD(a twoport.Mat2, temp float64) (TwoPort, error) {
	y, err := twoport.ABCDToY(a)
	if err != nil {
		// Degenerate chain matrices (pure series element) are handled via
		// their explicit constructors; fall back to the direct CA forms.
		return TwoPort{}, fmt.Errorf("noise: passive network: %w", err)
	}
	cy := hermitianPart(y).Scale(complex(temp/mathx.T0, 0))
	return FromY(y, cy)
}

// SeriesZ returns the noisy two-port of a series impedance z at physical
// temperature temp.
func SeriesZ(z complex128, temp float64) TwoPort {
	return TwoPort{
		A:  twoport.SeriesZ(z),
		CA: twoport.Mat2{{complex(real(z)*temp/mathx.T0, 0), 0}, {0, 0}},
	}
}

// ShuntY returns the noisy two-port of a shunt admittance y at physical
// temperature temp.
func ShuntY(y complex128, temp float64) TwoPort {
	return TwoPort{
		A:  twoport.ShuntY(y),
		CA: twoport.Mat2{{0, 0}, {0, complex(real(y)*temp/mathx.T0, 0)}},
	}
}

// FromY builds the chain-representation noisy two-port from an admittance
// matrix and its (normalized) CY correlation matrix.
func FromY(y, cy twoport.Mat2) (TwoPort, error) {
	a, err := twoport.YToABCD(y)
	if err != nil {
		return TwoPort{}, fmt.Errorf("noise: FromY: %w", err)
	}
	// Hillbrand-Russer transformation CY -> CA with T = [[0, A12],[1, A22]].
	t := twoport.Mat2{{0, a[0][1]}, {1, a[1][1]}}
	return TwoPort{A: a, CA: cy.Congruence(t)}, nil
}

// ToY returns the admittance matrix and (normalized) CY correlation matrix
// of the noisy two-port.
func (n TwoPort) ToY() (y, cy twoport.Mat2, err error) {
	y, err = twoport.ABCDToY(n.A)
	if err != nil {
		return twoport.Mat2{}, twoport.Mat2{}, fmt.Errorf("noise: ToY: %w", err)
	}
	// Hillbrand-Russer transformation CA -> CY with T = [[-Y11, 1],[-Y21, 0]].
	t := twoport.Mat2{{-y[0][0], 1}, {-y[1][0], 0}}
	return y, n.CA.Congruence(t), nil
}

// Cascade returns the noisy two-port of n followed by m (signal flows
// n then m).
func (n TwoPort) Cascade(m TwoPort) TwoPort {
	return TwoPort{
		A:  n.A.Mul(m.A),
		CA: n.CA.Add(m.CA.Congruence(n.A)),
	}
}

// S returns the scattering matrix of the network at reference z0.
func (n TwoPort) S(z0 float64) (twoport.Mat2, error) {
	return twoport.ABCDToS(n.A, z0)
}

// FigureY returns the noise figure (linear) seen from a source with
// admittance ys, computed directly from the correlation matrix.
func (n TwoPort) FigureY(ys complex128) float64 {
	gs := real(ys)
	if gs <= 0 {
		return math.Inf(1)
	}
	num := real(n.CA[1][1]) + sqAbs(ys)*real(n.CA[0][0]) + 2*real(ys*n.CA[0][1])
	return 1 + num/gs
}

// Figure returns the noise figure (linear) for source reflection gammaS at
// reference z0.
func (n TwoPort) Figure(gammaS complex128, z0 float64) float64 {
	return n.FigureY(1 / twoport.ZFromGamma(gammaS, z0))
}

// NoiseParams extracts the four noise parameters from the correlation
// matrix. It returns ErrNotPhysical when CA has negative noise resistance.
func (n TwoPort) NoiseParams(z0 float64) (Params, error) {
	rn := real(n.CA[0][0])
	if rn < 0 {
		return Params{}, ErrNotPhysical
	}
	if rn == 0 {
		// A strictly noiseless (or v-noise-free) network: treat Rn as a tiny
		// positive value so downstream formulas stay finite.
		rn = 1e-30
	}
	ratio := n.CA[0][1] / complex(rn, 0)
	bopt := imag(ratio)
	g2 := real(n.CA[1][1])/rn - bopt*bopt
	if g2 < 0 {
		g2 = 0
	}
	gopt := math.Sqrt(g2)
	fmin := 1 + 2*(real(n.CA[0][1])+rn*gopt)
	yopt := complex(gopt, bopt)
	gammaOpt := complex(1, 0) // Yopt = 0: the optimum source is an open
	if yopt != 0 {
		gammaOpt = twoport.GammaFromZ(1/yopt, z0)
	}
	return Params{
		Fmin:     fmin,
		Rn:       rn,
		GammaOpt: gammaOpt,
		Z0:       z0,
	}, nil
}

// FromNoiseParams builds the CA correlation matrix corresponding to the four
// noise parameters, attached to the given chain matrix.
func FromNoiseParams(a twoport.Mat2, p Params) TwoPort {
	yopt := p.YOpt()
	c12 := complex((p.Fmin-1)/2, 0) - complex(p.Rn, 0)*cmplx.Conj(yopt)
	return TwoPort{
		A: a,
		CA: twoport.Mat2{
			{complex(p.Rn, 0), c12},
			{cmplx.Conj(c12), complex(p.Rn*sqAbs(yopt), 0)},
		},
	}
}

// FromZ builds the noisy two-port from an impedance matrix and its
// (normalized) CZ correlation matrix, used when embedding common-lead
// (series-feedback) parasitics.
func FromZ(z, cz twoport.Mat2) (TwoPort, error) {
	y, err := twoport.ZToY(z)
	if err != nil {
		return TwoPort{}, fmt.Errorf("noise: FromZ: %w", err)
	}
	return FromY(y, cz.Congruence(y)) // CY = Y CZ Y^H
}

// ToZ returns the impedance matrix and (normalized) CZ correlation matrix.
func (n TwoPort) ToZ() (z, cz twoport.Mat2, err error) {
	y, cy, err := n.ToY()
	if err != nil {
		return twoport.Mat2{}, twoport.Mat2{}, err
	}
	z, err = twoport.YToZ(y)
	if err != nil {
		return twoport.Mat2{}, twoport.Mat2{}, fmt.Errorf("noise: ToZ: %w", err)
	}
	return z, cy.Congruence(z), nil // CZ = Z CY Z^H
}

// hermitianPart returns (m + m^H)/2.
func hermitianPart(m twoport.Mat2) twoport.Mat2 {
	h := m.Add(m.ConjTranspose())
	return h.Scale(0.5)
}
