// Package noise implements two-port noise theory: the four noise parameters
// (Fmin, Rn, GammaOpt), noise figure versus source termination, noise
// circles, and — the workhorse for the amplifier analysis — noise
// correlation matrices in the chain (CA) and admittance (CY)
// representations with exact cascading of noisy stages after Hillbrand &
// Russer. This lets the design flow account for the thermal noise of every
// lossy matching element, not just the transistor.
//
// All correlation matrices in this package are normalized to 4*k*T0 (T0 =
// 290 K): the physical spectral density matrix is 4*k*T0 times the stored
// values. With this convention CA[0][0] is directly Rn in ohms and CA[1][1]
// is Rn*|Yopt|^2 in siemens.
package noise

import (
	"errors"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

// ErrNotPhysical reports a correlation matrix that does not correspond to a
// physical noisy network (e.g. negative noise resistance).
var ErrNotPhysical = errors.New("noise: correlation matrix is not physically realizable")

// Params holds the four noise parameters of a two-port referenced to Z0.
type Params struct {
	// Fmin is the minimum noise figure as a linear power ratio (>= 1).
	Fmin float64
	// Rn is the equivalent noise resistance in ohms.
	Rn float64
	// GammaOpt is the optimum source reflection coefficient (at Z0).
	GammaOpt complex128
	// Z0 is the reference impedance for GammaOpt.
	Z0 float64
}

// FminDB returns the minimum noise figure in dB.
func (p Params) FminDB() float64 { return mathx.DB10(p.Fmin) }

// YOpt returns the optimum source admittance.
func (p Params) YOpt() complex128 {
	z := twoport.ZFromGamma(p.GammaOpt, p.Z0)
	return 1 / z
}

// Figure returns the noise figure (linear) for source reflection gammaS.
func (p Params) Figure(gammaS complex128) float64 {
	ys := 1 / twoport.ZFromGamma(gammaS, p.Z0)
	return p.FigureY(ys)
}

// FigureY returns the noise figure (linear) for source admittance ys.
func (p Params) FigureY(ys complex128) float64 {
	gs := real(ys)
	if gs <= 0 {
		return math.Inf(1)
	}
	d := ys - p.YOpt()
	return p.Fmin + p.Rn/gs*(real(d)*real(d)+imag(d)*imag(d))
}

// FigureDB returns the noise figure in dB for source reflection gammaS.
func (p Params) FigureDB(gammaS complex128) float64 {
	return mathx.DB10(p.Figure(gammaS))
}

// Te returns the equivalent input noise temperature in kelvin at the optimum
// source.
func (p Params) Te() float64 { return mathx.NFToTemp(p.Fmin) }

// Circle returns the locus of source reflection coefficients giving the
// noise figure f (linear, must be >= Fmin) as a circle in the Gamma plane.
func (p Params) Circle(f float64) (twoport.Circle, error) {
	if f < p.Fmin {
		return twoport.Circle{}, errors.New("noise: requested figure below Fmin")
	}
	g2 := real(p.GammaOpt)*real(p.GammaOpt) + imag(p.GammaOpt)*imag(p.GammaOpt)
	n := (f - p.Fmin) * sqAbs(1+p.GammaOpt) / (4 * p.Rn / p.Z0)
	center := p.GammaOpt / complex(1+n, 0)
	radius := math.Sqrt(n*n+n*(1-g2)) / (1 + n)
	return twoport.Circle{Center: center, Radius: radius}, nil
}

// Friis returns the cascade noise figure of stages with noise figures f[i]
// and available gains g[i] (both linear), assuming each stage sees the
// source impedance its noise figure was specified for.
func Friis(f, g []float64) float64 {
	if len(f) == 0 {
		return 1
	}
	total := f[0]
	gain := 1.0
	for i := 1; i < len(f); i++ {
		gain *= g[i-1]
		total += (f[i] - 1) / gain
	}
	return total
}

// Measure returns the noise measure M = (F-1)/(1-1/GA), which ranks devices
// for infinite-cascade noise performance.
func Measure(f, ga float64) float64 {
	if ga <= 1 {
		return math.Inf(1)
	}
	return (f - 1) / (1 - 1/ga)
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
