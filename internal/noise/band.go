package noise

import "gnsslna/internal/twoport"

// Grid-batched noisy two-port algebra: the structure-of-arrays fast path the
// band-sweep engine rides. Each function is defined to reproduce the
// per-point methods exactly — the batched loops call the identical scalar
// arithmetic in the identical order — so the differential suite can require
// value-exact agreement (==, which treats the two signed zeros as equal)
// between the batch and per-point paths.

// CascadeSeries returns the cascade of n followed by the noisy series
// impedance z whose normalized noise resistance is r (real(z)*T/T0, the CA
// [0][0] entry SeriesZ would carry).
//
// It is the specialized form of n.Cascade(SeriesZ(z, t)) for the elementary
// chain matrix [[1, z], [0, 1]] and the rank-one correlation [[r, 0], [0,
// 0]]: the full 2x2 products degenerate to terms multiplied by exact ones
// and zeros, which the specialization drops. For finite operands every
// surviving term is computed by the same operations in the same order as the
// generic path, so the results compare equal under ==. Callers must fall
// back to the generic Cascade when z or any entry of n is non-finite (a
// product against an exact zero would then be NaN on the generic path).
func (n TwoPort) CascadeSeries(z complex128, r float64) TwoPort {
	a := n.A
	rc := complex(r, 0)
	// t.Mul(mCA) keeps the products (a00*rc, a10*rc) as intermediates; the
	// second factor multiplies them by conj(a00), conj(a10) exactly as the
	// generic congruence does.
	p0 := a[0][0] * rc
	p1 := a[1][0] * rc
	c00 := conj(a[0][0])
	c10 := conj(a[1][0])
	return TwoPort{
		A: twoport.Mat2{
			{a[0][0], a[0][0]*z + a[0][1]},
			{a[1][0], a[1][0]*z + a[1][1]},
		},
		CA: twoport.Mat2{
			{n.CA[0][0] + p0*c00, n.CA[0][1] + p0*c10},
			{n.CA[1][0] + p1*c00, n.CA[1][1] + p1*c10},
		},
	}
}

// CascadeShunt returns the cascade of n followed by the noisy shunt
// admittance y whose normalized noise conductance is g (real(y)*T/T0, the CA
// [1][1] entry ShuntY would carry).
//
// The specialized form of n.Cascade(ShuntY(y, t)) for the elementary chain
// matrix [[1, 0], [y, 1]] and the rank-one correlation [[0, 0], [0, g]],
// under the same finite-operand contract as CascadeSeries.
func (n TwoPort) CascadeShunt(y complex128, g float64) TwoPort {
	a := n.A
	gc := complex(g, 0)
	q0 := a[0][1] * gc
	q1 := a[1][1] * gc
	c01 := conj(a[0][1])
	c11 := conj(a[1][1])
	return TwoPort{
		A: twoport.Mat2{
			{a[0][0] + a[0][1]*y, a[0][1]},
			{a[1][0] + a[1][1]*y, a[1][1]},
		},
		CA: twoport.Mat2{
			{n.CA[0][0] + q0*c01, n.CA[0][1] + q0*c11},
			{n.CA[1][0] + q1*c01, n.CA[1][1] + q1*c11},
		},
	}
}

// CascadeBand writes the pointwise cascade a[i] followed by b[i] into dst
// (which must have the common length) and returns dst. Each point is the
// exact per-point Cascade.
func CascadeBand(dst, a, b []TwoPort) []TwoPort {
	for i := range dst {
		dst[i] = a[i].Cascade(b[i])
	}
	return dst
}

// SBand converts a slab of noisy two-ports to scattering matrices at the
// common reference z0, writing into dst (same length). Each point is the
// exact per-point S.
func SBand(dst []twoport.Mat2, tps []TwoPort, z0 float64) error {
	for i := range tps {
		s, err := tps[i].S(z0)
		if err != nil {
			return err
		}
		dst[i] = s
	}
	return nil
}

// Finite reports whether every entry of the two-port's chain matrix is
// finite, the precondition for the specialized elementary cascades.
func (n TwoPort) Finite() bool {
	return finiteM(n.A)
}

func finiteM(m twoport.Mat2) bool {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			v := m[i][j]
			if !finite(real(v)) || !finite(imag(v)) {
				return false
			}
		}
	}
	return true
}

func finite(v float64) bool {
	// Inf - Inf and NaN both fail the self-subtraction test; avoids the
	// math.IsInf/IsNaN pair on the hot path.
	return v-v == 0
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
