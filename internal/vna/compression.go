package vna

import (
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
)

// CompressionPoint is one gain-compression reading.
type CompressionPoint struct {
	// DriveVolts is the single-tone gate drive amplitude.
	DriveVolts float64
	// GainDB is the large-signal transconductance gain relative to the
	// small-signal value, in dB (0 dB = uncompressed).
	GainDB float64
	// PoutDBm is the fundamental output power into the load.
	PoutDBm float64
}

// MeasureP1dB drives the transistor with a growing single tone and locates
// the 1 dB gain-compression point by interpolation. It returns the
// compression sweep and the output power at 1 dB compression.
func MeasureP1dB(d *device.PHEMT, b device.Bias, f0 float64, cfg TwoToneConfig) (p1dBm float64, sweep []CompressionPoint, err error) {
	cfg = cfg.defaults()
	if f0 <= 0 || cfg.Resolution <= 0 {
		return 0, nil, fmt.Errorf("%w: need positive tone and resolution", ErrBadConfig)
	}
	if k := f0 / cfg.Resolution; math.Abs(k-math.Round(k)) > 1e-6 {
		return 0, nil, fmt.Errorf("%w: tone %g not on the %g Hz grid", ErrBadConfig, f0, cfg.Resolution)
	}
	fs, n := mathx.CoherentSampling([]float64{f0}, cfg.Resolution, cfg.Oversample)

	measure := func(a float64) float64 {
		x := make([]float64, n)
		w := 2 * math.Pi * f0
		for i := range x {
			t := float64(i) / fs
			x[i] = d.DC.Ids(b.Vgs+a*math.Cos(w*t), b.Vds)
		}
		return mathx.ToneAmplitude(x, f0, fs)
	}

	// Small-signal reference gain.
	const aRef = 1e-4
	gRef := measure(aRef) / aRef
	if gRef <= 0 {
		return 0, nil, fmt.Errorf("vna: no small-signal gain at this bias")
	}

	prevGain := 0.0
	prevPout := math.Inf(-1)
	for a := 1e-3; a <= 2.0; a *= 1.122 { // ~1 dB steps in drive
		iFund := measure(a)
		gain := mathx.DB20(iFund / a / gRef)
		pout := mathx.WattsToDBm(iFund * iFund * cfg.LoadOhms / 2)
		sweep = append(sweep, CompressionPoint{DriveVolts: a, GainDB: gain, PoutDBm: pout})
		if gain <= -1 {
			// Interpolate the crossing between the previous and this point.
			frac := (-1 - prevGain) / (gain - prevGain)
			return prevPout + frac*(pout-prevPout), sweep, nil
		}
		prevGain, prevPout = gain, pout
	}
	return 0, sweep, fmt.Errorf("vna: no 1 dB compression found up to 2 V drive")
}
