package vna

import (
	"math"
	"math/cmplx"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/twoport"
)

func TestMeasureDeviceAddsBoundedNoise(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	freqs := mathx.Linspace(1e9, 2e9, 11)
	v := NewVNA(42)
	meas, err := v.MeasureDevice(d, b, freqs)
	if err != nil {
		t.Fatalf("MeasureDevice: %v", err)
	}
	var worst float64
	for i, f := range freqs {
		truth, err := d.SAt(b, f, 50)
		if err != nil {
			t.Fatal(err)
		}
		if dd := twoport.MaxAbsDiff(meas.S[i], truth); dd > worst {
			worst = dd
		}
	}
	if worst == 0 {
		t.Error("measurement identical to truth: no noise injected")
	}
	if worst > 10*v.SigmaAbs {
		t.Errorf("noise excursion %g beyond 10 sigma (%g)", worst, v.SigmaAbs)
	}
}

func TestMeasureDeterministicPerSeed(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.5, Vds: 3}
	freqs := []float64{1e9, 1.5e9}
	v1 := NewVNA(7)
	v2 := NewVNA(7)
	m1, err := v1.MeasureDevice(d, b, freqs)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := v2.MeasureDevice(d, b, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		if twoport.MaxAbsDiff(m1.S[i], m2.S[i]) != 0 {
			t.Error("same seed produced different measurements")
		}
	}
	v3 := NewVNA(8)
	m3, err := v3.MeasureDevice(d, b, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if twoport.MaxAbsDiff(m1.S[0], m3.S[0]) == 0 {
		t.Error("different seeds produced identical measurements")
	}
}

func TestRunCampaignShapes(t *testing.T) {
	d := device.Golden()
	cfg := DefaultCampaign(3)
	ds, err := RunCampaign(d, cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(ds.Hot) != len(cfg.Biases) {
		t.Errorf("hot sets = %d, want %d", len(ds.Hot), len(cfg.Biases))
	}
	if ds.ColdPinched == nil || ds.ColdPinched.Len() != len(cfg.Freqs) {
		t.Error("cold sweep missing or wrong length")
	}
	if len(ds.IV) != len(cfg.VgsGrid) || len(ds.IV[0]) != len(cfg.VdsGrid) {
		t.Error("IV grid shape wrong")
	}
	// IV noise is relative: currents near zero stay near zero.
	for i, vgs := range cfg.VgsGrid {
		for j, vds := range cfg.VdsGrid {
			truth := d.DC.Ids(vgs, vds)
			if math.Abs(ds.IV[i][j]-truth) > 0.1*truth+1e-12 {
				t.Errorf("IV(%g,%g) = %g, truth %g: noise too large", vgs, vds, ds.IV[i][j], truth)
			}
		}
	}
	// Cold sweep must look passive.
	for i := range ds.ColdPinched.S {
		if g := cmplx.Abs(ds.ColdPinched.S[i][1][0]); g > 1.02 {
			t.Errorf("cold |S21| = %g, want <= ~1", g)
		}
	}
	if _, err := RunCampaign(d, CampaignConfig{}); err == nil {
		t.Error("empty campaign accepted")
	}
}

func TestNFMeter(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	freqs := []float64{1.2e9, 1.6e9}
	m := &NFMeter{SigmaDB: 0.05, Seed: 5}
	nfs, err := m.MeasureNF(freqs, func(f float64) (noise.TwoPort, error) {
		return d.NoisyAt(b, f)
	})
	if err != nil {
		t.Fatalf("MeasureNF: %v", err)
	}
	for i, f := range freqs {
		tp, err := d.NoisyAt(b, f)
		if err != nil {
			t.Fatal(err)
		}
		truth := mathx.DB10(tp.FigureY(complex(1.0/50, 0)))
		if math.Abs(nfs[i]-truth) > 0.3 {
			t.Errorf("f=%g: measured NF %g vs truth %g", f, nfs[i], truth)
		}
	}
}

func TestVNANoiseFloor(t *testing.T) {
	v := NewVNA(1)
	floor := v.GainPhaseNoiseFloorDB()
	if floor > -40 || floor < -80 {
		t.Errorf("noise floor = %g dB, want around -54 dB for sigma 0.002", floor)
	}
	v.SigmaAbs = 0
	if !math.IsInf(v.GainPhaseNoiseFloorDB(), -1) {
		t.Error("zero-noise floor must be -Inf")
	}
}

func TestSourcePullStatesAndMeasureInPackage(t *testing.T) {
	// In-package exercise of the source-pull bench (the Lane fit consumes
	// it from the extract package): the matched state must read near the
	// 50-ohm figure and the far-out states strictly worse than Fmin.
	d := device.Golden()
	tp, err := d.NoisyAt(device.Bias{Vgs: 0.52, Vds: 3}, 1.4e9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tp.NoiseParams(50)
	if err != nil {
		t.Fatal(err)
	}
	bench := &SourcePullBench{SigmaDB: 0, Seed: 1}
	pts, err := bench.Measure(tp, DefaultTunerStates())
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if pts[0].GammaS != 0 {
		t.Fatal("first default state should be the matched point")
	}
	f50 := tp.FigureY(complex(1.0/50, 0))
	if math.Abs(pts[0].FLinear-f50) > 1e-12 {
		t.Errorf("matched-state F = %g, want %g", pts[0].FLinear, f50)
	}
	for _, pt := range pts {
		if pt.FLinear < p.Fmin-1e-9 {
			t.Errorf("state %v reads below Fmin", pt.GammaS)
		}
	}
}
