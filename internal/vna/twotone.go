package vna

import (
	"fmt"
	"math"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
)

// TwoToneConfig describes an intermodulation measurement.
type TwoToneConfig struct {
	// F1 and F2 are the tone frequencies in Hz (closely spaced, in-band).
	F1, F2 float64
	// Resolution is the spectral bin spacing; F1, F2 and the IM products
	// must all be integer multiples of it (e.g. 100 kHz for 1 MHz spacing).
	Resolution float64
	// Oversample is the sampling factor relative to the highest tone
	// (default 8).
	Oversample int
	// LoadOhms is the output termination resistance for power conversion
	// (default 50).
	LoadOhms float64
}

// TwoToneResult reports the tone and intermod levels of one drive level.
type TwoToneResult struct {
	// DriveVolts is the per-tone gate drive amplitude.
	DriveVolts float64
	// PFundDBm is the output power of the f1 fundamental in dBm.
	PFundDBm float64
	// PIM3DBm is the output power of the 2f1-f2 product in dBm.
	PIM3DBm float64
}

// defaults fills in unset configuration values.
func (c TwoToneConfig) defaults() TwoToneConfig {
	if c.Oversample == 0 {
		c.Oversample = 8
	}
	if c.LoadOhms == 0 {
		c.LoadOhms = 50
	}
	return c
}

func (c TwoToneConfig) validate() error {
	if c.F1 <= 0 || c.F2 <= 0 || c.F1 == c.F2 {
		return fmt.Errorf("%w: need two distinct positive tones", ErrBadConfig)
	}
	if c.Resolution <= 0 {
		return fmt.Errorf("%w: need positive resolution", ErrBadConfig)
	}
	for _, f := range []float64{c.F1, c.F2, 2*c.F1 - c.F2, 2*c.F2 - c.F1} {
		k := f / c.Resolution
		if math.Abs(k-math.Round(k)) > 1e-6 {
			return fmt.Errorf("%w: frequency %g not on the %g Hz grid", ErrBadConfig, f, c.Resolution)
		}
	}
	return nil
}

// RunTwoTone drives the transistor's nonlinear transconductance with a
// two-tone gate voltage around the bias point, samples the drain current
// waveform coherently and extracts the fundamental and IM3 tones with a
// Goertzel DFT. The returned powers are the tone powers delivered to the
// load resistance.
func RunTwoTone(d *device.PHEMT, b device.Bias, drive float64, cfg TwoToneConfig) (TwoToneResult, error) {
	cfg = cfg.defaults()
	if err := cfg.validate(); err != nil {
		return TwoToneResult{}, err
	}
	fs, n := mathx.CoherentSampling([]float64{cfg.F1, cfg.F2}, cfg.Resolution, cfg.Oversample)
	x := make([]float64, n)
	w1 := 2 * math.Pi * cfg.F1
	w2 := 2 * math.Pi * cfg.F2
	for i := range x {
		t := float64(i) / fs
		vgs := b.Vgs + drive*(math.Cos(w1*t)+math.Cos(w2*t))
		x[i] = d.DC.Ids(vgs, b.Vds)
	}
	iFund := mathx.ToneAmplitude(x, cfg.F1, fs)
	iIM3 := mathx.ToneAmplitude(x, 2*cfg.F1-cfg.F2, fs)
	// Tone power delivered to the load: P = I^2 R / 2 for amplitude I.
	toDBm := func(iamp float64) float64 {
		p := iamp * iamp * cfg.LoadOhms / 2
		if p <= 0 {
			return math.Inf(-1)
		}
		return mathx.WattsToDBm(p)
	}
	return TwoToneResult{
		DriveVolts: drive,
		PFundDBm:   toDBm(iFund),
		PIM3DBm:    toDBm(iIM3),
	}, nil
}

// IP3Result summarizes an intercept-point measurement.
type IP3Result struct {
	// OIP3DBm is the output third-order intercept point in dBm.
	OIP3DBm float64
	// SlopeFund and SlopeIM3 are the measured power slopes in dB/dB,
	// nominally 1 and 3.
	SlopeFund, SlopeIM3 float64
	// Points holds the per-drive measurements used for the fit.
	Points []TwoToneResult
}

// MeasureOIP3 sweeps the drive level, checks the 1:3 slope signature and
// extrapolates the output intercept point from the lowest measured drive
// (where the small-signal 3:1 law is cleanest).
func MeasureOIP3(d *device.PHEMT, b device.Bias, drives []float64, cfg TwoToneConfig) (IP3Result, error) {
	if len(drives) < 2 {
		return IP3Result{}, fmt.Errorf("%w: need at least two drive levels", ErrBadConfig)
	}
	var res IP3Result
	var inDB, fundDB, im3DB []float64
	for _, a := range drives {
		r, err := RunTwoTone(d, b, a, cfg)
		if err != nil {
			return IP3Result{}, err
		}
		res.Points = append(res.Points, r)
		inDB = append(inDB, 20*math.Log10(a))
		fundDB = append(fundDB, r.PFundDBm)
		im3DB = append(im3DB, r.PIM3DBm)
	}
	// Fit slopes (dB out per dB in).
	cf, err := mathx.PolyFit(inDB, fundDB, 1)
	if err != nil {
		return IP3Result{}, fmt.Errorf("vna: fundamental slope fit: %w", err)
	}
	ci, err := mathx.PolyFit(inDB, im3DB, 1)
	if err != nil {
		return IP3Result{}, fmt.Errorf("vna: IM3 slope fit: %w", err)
	}
	res.SlopeFund, res.SlopeIM3 = cf[1], ci[1]
	// Extrapolate from the lowest drive point: OIP3 = Pfund + (Pfund -
	// Pim3)/2.
	p0 := res.Points[0]
	res.OIP3DBm = p0.PFundDBm + (p0.PFundDBm-p0.PIM3DBm)/2
	return res, nil
}

// AnalyticOIP3 computes the output intercept point predicted by the
// power-series coefficients of the DC model at the bias point, the
// closed-form cross-check for the time-domain measurement:
// with id = gm1 v + gm2/2 v^2 + gm3/6 v^3, the IM3 current amplitude for
// per-tone drive a is |gm3| a^3 / 8 and the intercept follows from the
// 3:1 extrapolation.
func AnalyticOIP3(d *device.PHEMT, b device.Bias, loadOhms float64) float64 {
	gm1, _, gm3 := d.GmCoefficients(b)
	if gm3 == 0 {
		return math.Inf(1)
	}
	// Intercept drive amplitude: gm1 a = |gm3| a^3 / 8 => a^2 = 8 gm1/|gm3|.
	a2 := 8 * gm1 / math.Abs(gm3)
	iFund := gm1 * math.Sqrt(a2)
	p := iFund * iFund * loadOhms / 2
	return mathx.WattsToDBm(p)
}
