package vna

import (
	"fmt"
	"math/rand"

	"gnsslna/internal/calib"
	"gnsslna/internal/device"
	"gnsslna/internal/twoport"
)

// RawChain is a VNA whose test set has NOT been calibrated out: every
// measurement passes through imperfect error adapters. It exposes the
// calibration workflow (measure standards, solve SOLT, correct) that a real
// campaign performs before any of the data in Dataset exists.
type RawChain struct {
	// Inner is the trace-noise model of the receiver.
	Inner *VNA
	// TestSet holds the error adapters at the two ports.
	TestSet calib.TestSet
}

// NewRawChain draws a random (but deterministic per seed) imperfect
// measurement chain.
func NewRawChain(seed int64) *RawChain {
	rng := rand.New(rand.NewSource(seed))
	return &RawChain{
		Inner:   NewVNA(seed + 1),
		TestSet: calib.RandomTestSet(rng),
	}
}

// MeasureRaw sweeps a DUT responder through the uncorrected test set.
func (r *RawChain) MeasureRaw(freqs []float64, dut func(f float64) (twoport.Mat2, error)) (*twoport.Network, error) {
	return r.Inner.Measure(freqs, func(f float64) (twoport.Mat2, error) {
		s, err := dut(f)
		if err != nil {
			return twoport.Mat2{}, err
		}
		return r.TestSet.Raw(s, r.Inner.z0())
	})
}

// CalibrateAndMeasure performs the full calibrated workflow: measure the
// SOL standards at both ports and a through, solve the 8-term model, then
// measure the DUT raw and return the corrected network. The standards are
// measured with the same trace noise as the DUT.
func (r *RawChain) CalibrateAndMeasure(freqs []float64, dut func(f float64) (twoport.Mat2, error)) (*twoport.Network, error) {
	z0 := r.Inner.z0()
	// In this model the adapters are frequency-flat, so one calibration
	// serves the whole sweep (the general per-frequency case would repeat
	// this block per point).
	solA := calib.MeasureSOL(r.TestSet.PortA)
	solB := calib.MeasureSOL(r.TestSet.PortB)
	thruRaw, err := r.TestSet.Raw(twoport.Mat2{{0, 1}, {1, 0}}, z0)
	if err != nil {
		return nil, fmt.Errorf("vna: through standard: %w", err)
	}
	cal, err := calib.Calibrate(z0, solA, solB, thruRaw)
	if err != nil {
		return nil, fmt.Errorf("vna: calibration: %w", err)
	}
	raw, err := r.MeasureRaw(freqs, dut)
	if err != nil {
		return nil, err
	}
	corrected := make([]twoport.Mat2, raw.Len())
	for i := range raw.S {
		c, err := cal.Correct(raw.S[i])
		if err != nil {
			return nil, fmt.Errorf("vna: correction at %g Hz: %w", raw.Freqs[i], err)
		}
		corrected[i] = c
	}
	return twoport.NewNetwork(z0, raw.Freqs, corrected)
}

// MeasureDeviceCalibrated is a convenience wrapper for transistor sweeps.
func (r *RawChain) MeasureDeviceCalibrated(d *device.PHEMT, b device.Bias, freqs []float64) (*twoport.Network, error) {
	return r.CalibrateAndMeasure(freqs, func(f float64) (twoport.Mat2, error) {
		return d.SAt(b, f, r.Inner.z0())
	})
}
