package vna

import (
	"fmt"
	"math"
	"math/rand"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
)

// YFactorMeter models the actual measurement principle of a noise-figure
// analyzer: a calibrated noise source is switched between its cold (off,
// ~290 K) and hot (on, ENR-defined) states, the output noise powers are
// ratioed (the Y factor) and the DUT noise figure follows from
// F = ENR / (Y - 1). Power-detector uncertainty enters each reading.
type YFactorMeter struct {
	// ENRdB is the excess noise ratio of the noise source in dB
	// (typically 5-15 dB).
	ENRdB float64
	// SigmaRel is the relative power-detector uncertainty per reading
	// (e.g. 0.005 for 0.02 dB).
	SigmaRel float64
	// Seed drives the deterministic measurement noise.
	Seed int64
}

// NewYFactorMeter returns a 15 dB ENR meter with realistic detector noise.
func NewYFactorMeter(seed int64) *YFactorMeter {
	return &YFactorMeter{ENRdB: 15, SigmaRel: 0.003, Seed: seed}
}

// Measure returns the DUT noise figure in dB at each frequency via the
// Y-factor procedure against the noisy two-port produced by build(f).
func (m *YFactorMeter) Measure(freqs []float64, build func(f float64) (noise.TwoPort, error)) ([]float64, error) {
	if m.ENRdB <= 0 {
		return nil, fmt.Errorf("%w: ENR must be positive", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	enr := mathx.FromDB10(m.ENRdB)
	tHot := mathx.T0 * (1 + enr)
	tCold := mathx.T0
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		tp, err := build(f)
		if err != nil {
			return nil, fmt.Errorf("vna: y-factor at %g Hz: %w", f, err)
		}
		// The DUT's equivalent input temperature from a matched source.
		fLin := tp.FigureY(complex(1.0/50, 0))
		te := mathx.NFToTemp(fLin)
		// Output-referred noise powers (per unit bandwidth-gain, the gain
		// cancels in the ratio).
		pHot := (tHot + te) * (1 + m.SigmaRel*rng.NormFloat64())
		pCold := (tCold + te) * (1 + m.SigmaRel*rng.NormFloat64())
		y := pHot / pCold
		if y <= 1 {
			return nil, fmt.Errorf("vna: y-factor at %g Hz collapsed (Y = %g)", f, y)
		}
		fMeas := enr / (y - 1)
		// Remove the cold-source offset exactly as instruments do
		// (T0-referenced ENR with Tcold = T0 gives F directly).
		out[i] = mathx.DB10(fMeas)
	}
	return out, nil
}

// UncertaintyDB estimates the 1-sigma NF uncertainty of the meter for a DUT
// with noise figure nfDB, from linear error propagation of the Y reading.
func (m *YFactorMeter) UncertaintyDB(nfDB float64) float64 {
	enr := mathx.FromDB10(m.ENRdB)
	f := mathx.FromDB10(nfDB)
	te := mathx.NFToTemp(f)
	tHot := mathx.T0 * (1 + enr)
	y := (tHot + te) / (mathx.T0 + te)
	// dF/F = dY * Y/(Y-1) with dY/Y = sqrt(2)*sigma.
	rel := math.Sqrt2 * m.SigmaRel * y / (y - 1)
	return 10 * math.Log10(1+rel)
}
