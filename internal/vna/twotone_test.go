package vna

import (
	"math"
	"testing"

	"gnsslna/internal/device"
)

var ttCfg = TwoToneConfig{
	F1:         1.5748e9,
	F2:         1.5752e9,
	Resolution: 200e3,
}

func TestTwoToneSlopes(t *testing.T) {
	// IM3 must grow 3 dB per dB of drive; fundamental 1 dB per dB.
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	res, err := MeasureOIP3(d, b, []float64{0.002, 0.004, 0.008}, ttCfg)
	if err != nil {
		t.Fatalf("MeasureOIP3: %v", err)
	}
	if math.Abs(res.SlopeFund-1) > 0.05 {
		t.Errorf("fundamental slope = %g dB/dB, want ~1", res.SlopeFund)
	}
	if math.Abs(res.SlopeIM3-3) > 0.3 {
		t.Errorf("IM3 slope = %g dB/dB, want ~3", res.SlopeIM3)
	}
	if res.OIP3DBm < 0 || res.OIP3DBm > 60 {
		t.Errorf("OIP3 = %g dBm, outside plausible range", res.OIP3DBm)
	}
}

func TestMeasuredOIP3MatchesAnalytic(t *testing.T) {
	// The Goertzel measurement and the power-series closed form must agree
	// within ~1 dB at small drives.
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	res, err := MeasureOIP3(d, b, []float64{0.001, 0.002}, ttCfg)
	if err != nil {
		t.Fatalf("MeasureOIP3: %v", err)
	}
	analytic := AnalyticOIP3(d, b, 50)
	if math.Abs(res.OIP3DBm-analytic) > 1.5 {
		t.Errorf("measured OIP3 %.2f dBm vs analytic %.2f dBm", res.OIP3DBm, analytic)
	}
}

func TestIM3SymmetryOfProducts(t *testing.T) {
	// 2f1-f2 and 2f2-f1 products have equal magnitude for a memoryless
	// nonlinearity.
	d := device.Golden()
	b := device.Bias{Vgs: 0.56, Vds: 3}
	r1, err := RunTwoTone(d, b, 0.005, ttCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the tones: the "other" IM3 product becomes 2f1-f2 of the swapped
	// configuration.
	swapped := ttCfg
	swapped.F1, swapped.F2 = ttCfg.F2, ttCfg.F1
	r2, err := RunTwoTone(d, b, 0.005, swapped)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.PIM3DBm-r2.PIM3DBm) > 0.2 {
		t.Errorf("IM3 products asymmetric: %g vs %g dBm", r1.PIM3DBm, r2.PIM3DBm)
	}
}

func TestIP3SweetSpotExists(t *testing.T) {
	// Because gm3 changes sign with bias, OIP3 versus Vgs must exhibit a
	// pronounced peak (the classic pHEMT linearity sweet spot).
	d := device.Golden()
	var best, worst float64 = math.Inf(-1), math.Inf(1)
	for vgs := 0.35; vgs <= 0.75; vgs += 0.01 {
		o := AnalyticOIP3(d, device.Bias{Vgs: vgs, Vds: 3}, 50)
		if math.IsInf(o, 1) {
			continue // exactly on the gm3 zero crossing
		}
		if o > best {
			best = o
		}
		if o < worst {
			worst = o
		}
	}
	if best-worst < 8 {
		t.Errorf("OIP3 bias variation only %g dB; expected a sweet spot", best-worst)
	}
}

func TestTwoToneValidation(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.5, Vds: 3}
	bad := ttCfg
	bad.F2 = bad.F1
	if _, err := RunTwoTone(d, b, 0.01, bad); err == nil {
		t.Error("equal tones accepted")
	}
	bad = ttCfg
	bad.Resolution = 333e3 // tones not on grid
	if _, err := RunTwoTone(d, b, 0.01, bad); err == nil {
		t.Error("off-grid tones accepted")
	}
	if _, err := MeasureOIP3(d, b, []float64{0.01}, ttCfg); err == nil {
		t.Error("single drive level accepted")
	}
}
