package vna

import (
	"math/cmplx"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
)

func TestRawChainDistortsThenCorrects(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.52, Vds: 3}
	freqs := mathx.Linspace(1e9, 2e9, 5)
	chain := NewRawChain(13)
	chain.Inner.SigmaAbs = 0 // isolate the systematic error

	raw, err := chain.MeasureRaw(freqs, func(f float64) (twoport.Mat2, error) {
		return d.SAt(b, f, 50)
	})
	if err != nil {
		t.Fatalf("MeasureRaw: %v", err)
	}
	corrected, err := chain.MeasureDeviceCalibrated(d, b, freqs)
	if err != nil {
		t.Fatalf("MeasureDeviceCalibrated: %v", err)
	}
	var worstRaw, worstCorr float64
	for i, f := range freqs {
		truth, err := d.SAt(b, f, 50)
		if err != nil {
			t.Fatal(err)
		}
		if e := twoport.MaxAbsDiff(raw.S[i], truth); e > worstRaw {
			worstRaw = e
		}
		if e := twoport.MaxAbsDiff(corrected.S[i], truth); e > worstCorr {
			worstCorr = e
		}
	}
	if worstRaw < 0.02 {
		t.Fatalf("raw chain too clean (%g); test set ineffective", worstRaw)
	}
	if worstCorr > 1e-8 {
		t.Errorf("calibration left residual %g (raw error was %g)", worstCorr, worstRaw)
	}
}

func TestRawChainWithTraceNoise(t *testing.T) {
	// With trace noise the correction cannot be exact, but must reduce the
	// error dramatically (well below the raw systematic level).
	d := device.Golden()
	b := device.Bias{Vgs: 0.52, Vds: 3}
	freqs := mathx.Linspace(1e9, 2e9, 5)
	chain := NewRawChain(29)

	corrected, err := chain.MeasureDeviceCalibrated(d, b, freqs)
	if err != nil {
		t.Fatalf("MeasureDeviceCalibrated: %v", err)
	}
	var worst float64
	for i, f := range freqs {
		truth, err := d.SAt(b, f, 50)
		if err != nil {
			t.Fatal(err)
		}
		if e := twoport.MaxAbsDiff(corrected.S[i], truth); e > worst {
			worst = e
		}
	}
	// Residual should be of the order of the trace noise scaled by the
	// gain of the correction (|S21| ~ 5-15 amplifies absolute errors).
	if worst > 0.35 {
		t.Errorf("corrected residual %g too large", worst)
	}
}

func TestRawChainDeterministic(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.5, Vds: 3}
	freqs := []float64{1.4e9}
	m1, err := NewRawChain(7).MeasureDeviceCalibrated(d, b, freqs)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewRawChain(7).MeasureDeviceCalibrated(d, b, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(m1.S[0][1][0]-m2.S[0][1][0]) != 0 {
		t.Error("same seed, different calibrated measurements")
	}
}
