package vna

import (
	"math"
	"testing"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
)

func TestYFactorRecoversTrueNF(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.52, Vds: 3}
	freqs := []float64{1.2e9, 1.575e9}
	build := func(f float64) (noise.TwoPort, error) { return d.NoisyAt(b, f) }

	// Noiseless detector: exact recovery.
	m := &YFactorMeter{ENRdB: 15, SigmaRel: 0, Seed: 1}
	got, err := m.Measure(freqs, build)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	for i, f := range freqs {
		tp, err := d.NoisyAt(b, f)
		if err != nil {
			t.Fatal(err)
		}
		want := mathx.DB10(tp.FigureY(complex(1.0/50, 0)))
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("f=%g: y-factor NF %g, want %g", f, got[i], want)
		}
	}

	// Realistic detector: within the meter's own predicted uncertainty.
	m2 := NewYFactorMeter(7)
	got2, err := m2.Measure(freqs, build)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		tp, err := d.NoisyAt(b, f)
		if err != nil {
			t.Fatal(err)
		}
		want := mathx.DB10(tp.FigureY(complex(1.0/50, 0)))
		sigma := m2.UncertaintyDB(want)
		if math.Abs(got2[i]-want) > 5*sigma {
			t.Errorf("f=%g: NF %g vs true %g beyond 5 sigma (%g)", f, got2[i], want, sigma)
		}
	}
}

func TestYFactorLowENRHurts(t *testing.T) {
	// With a small ENR the Y factor approaches 1 and the uncertainty must
	// grow: the meter's own estimate reflects this.
	hi := &YFactorMeter{ENRdB: 15, SigmaRel: 0.003}
	lo := &YFactorMeter{ENRdB: 5, SigmaRel: 0.003}
	if lo.UncertaintyDB(0.5) <= hi.UncertaintyDB(0.5) {
		t.Error("lower ENR should mean higher uncertainty")
	}
	bad := &YFactorMeter{ENRdB: 0}
	if _, err := bad.Measure([]float64{1e9}, nil); err == nil {
		t.Error("zero ENR accepted")
	}
}

func TestMeasureP1dB(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.50, Vds: 3}
	cfg := TwoToneConfig{Resolution: 500e3}
	p1, sweep, err := MeasureP1dB(d, b, 1.5755e9, cfg)
	if err != nil {
		t.Fatalf("MeasureP1dB: %v", err)
	}
	if len(sweep) < 5 {
		t.Fatalf("sweep too short: %d points", len(sweep))
	}
	// The compression point of this class of device: roughly 0-20 dBm.
	if p1 < -10 || p1 > 30 {
		t.Errorf("P1dB = %g dBm, implausible", p1)
	}
	// Gain must be monotone non-increasing once compression starts.
	started := false
	for i := 1; i < len(sweep); i++ {
		if sweep[i].GainDB < -0.2 {
			started = true
		}
		if started && sweep[i].GainDB > sweep[i-1].GainDB+0.05 {
			t.Errorf("gain expansion after compression onset at point %d", i)
		}
	}
	// P1dB should sit sensibly below OIP3 (rule of thumb ~9-12 dB, allow
	// a broad window because the sweet-spot bias distorts the rule).
	oip3 := AnalyticOIP3(d, b, 50)
	if p1 >= oip3 {
		t.Errorf("P1dB %g dBm above OIP3 %g dBm", p1, oip3)
	}
}

func TestMeasureP1dBValidation(t *testing.T) {
	d := device.Golden()
	b := device.Bias{Vgs: 0.5, Vds: 3}
	if _, _, err := MeasureP1dB(d, b, 0, TwoToneConfig{Resolution: 1e6}); err == nil {
		t.Error("zero tone accepted")
	}
	if _, _, err := MeasureP1dB(d, b, 1.0003e9, TwoToneConfig{Resolution: 1e6}); err == nil {
		t.Error("off-grid tone accepted")
	}
}
