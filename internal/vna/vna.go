// Package vna is the measurement substrate standing in for the paper's
// laboratory instruments: a synthetic vector network analyzer producing
// noisy S-parameter sweeps of a hidden "golden" device, a DC parameter
// analyzer producing noisy I-V grids, a noise-figure meter, and a two-tone
// intermodulation bench with Goertzel tone extraction. Extraction and
// verification code consumes these measurements exactly as it would consume
// instrument data, and — unlike in the paper — the golden device's true
// parameters remain available for accuracy grading.
package vna

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gnsslna/internal/device"
	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
	"gnsslna/internal/obs"
	"gnsslna/internal/twoport"
)

// ErrBadConfig reports an unusable instrument configuration.
var ErrBadConfig = errors.New("vna: invalid instrument configuration")

// VNA is a synthetic two-port vector network analyzer.
type VNA struct {
	// Z0 is the reference impedance (default 50).
	Z0 float64
	// SigmaAbs is the additive complex-Gaussian noise standard deviation
	// applied to each S-parameter (per real/imag part), e.g. 0.002 for a
	// calibrated instrument.
	SigmaAbs float64
	// Seed drives the deterministic noise generator.
	Seed int64
}

// NewVNA returns a calibrated instrument with a realistic trace-noise floor.
func NewVNA(seed int64) *VNA {
	return &VNA{Z0: twoport.Z0Default, SigmaAbs: 0.002, Seed: seed}
}

func (v *VNA) z0() float64 {
	if v.Z0 <= 0 {
		return twoport.Z0Default
	}
	return v.Z0
}

// MeasureDevice sweeps the device at the given bias over freqs and returns
// the noisy S-parameter network.
func (v *VNA) MeasureDevice(d *device.PHEMT, b device.Bias, freqs []float64) (*twoport.Network, error) {
	return v.Measure(freqs, func(f float64) (twoport.Mat2, error) {
		return d.SAt(b, f, v.z0())
	})
}

// Measure sweeps an arbitrary S(f) responder and adds trace noise.
func (v *VNA) Measure(freqs []float64, s func(f float64) (twoport.Mat2, error)) (*twoport.Network, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("%w: empty frequency list", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(v.Seed))
	mats := make([]twoport.Mat2, len(freqs))
	for i, f := range freqs {
		m, err := s(f)
		if err != nil {
			return nil, fmt.Errorf("vna: measure at %g Hz: %w", f, err)
		}
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				m[r][c] += complex(rng.NormFloat64()*v.SigmaAbs, rng.NormFloat64()*v.SigmaAbs)
			}
		}
		mats[i] = m
	}
	return twoport.NewNetwork(v.z0(), freqs, mats)
}

// BiasSet couples one bias point with its measured network.
type BiasSet struct {
	// Bias is the DC operating point of the sweep.
	Bias device.Bias
	// Net is the measured S-parameter network.
	Net *twoport.Network
}

// Dataset is the complete measurement campaign the extraction consumes.
type Dataset struct {
	// Hot holds the active-bias S-parameter sweeps.
	Hot []BiasSet
	// ColdPinched is the Vds = 0, pinched-gate sweep used by the direct
	// parasitic extraction (step 1) for the terminal resistances.
	ColdPinched *twoport.Network
	// ColdPinchedBias records the bias of the pinched cold sweep.
	ColdPinchedBias device.Bias
	// ColdOpen is the Vds = 0, open-channel sweep used by step 1 for the
	// terminal inductances (the low channel resistance makes the series
	// inductances dominate the imaginary parts).
	ColdOpen *twoport.Network
	// ColdOpenBias records the bias of the open cold sweep.
	ColdOpenBias device.Bias
	// IV is the DC current grid: IV[i][j] = Ids at (VgsGrid[i], VdsGrid[j]).
	IV [][]float64
	// VgsGrid and VdsGrid are the DC sweep axes.
	VgsGrid, VdsGrid []float64
	// Z0 is the S-parameter reference impedance.
	Z0 float64
}

// CampaignConfig describes a measurement campaign.
type CampaignConfig struct {
	// Freqs is the S-parameter frequency grid.
	Freqs []float64
	// Biases lists the hot bias points.
	Biases []device.Bias
	// ColdVgs is the pinched gate voltage for the cold sweep.
	ColdVgs float64
	// ColdOpenVgs is the open-channel gate voltage for the second cold
	// sweep (well above threshold).
	ColdOpenVgs float64
	// VgsGrid and VdsGrid are the DC sweep axes.
	VgsGrid, VdsGrid []float64
	// SigmaI is the relative DC current measurement noise (e.g. 0.01).
	SigmaI float64
	// Seed drives all instrument noise deterministically.
	Seed int64
	// SigmaS overrides the VNA trace noise when positive.
	SigmaS float64
	// Observer receives a "vna.campaign" span whose eval count is the
	// total number of measured points — S-parameter frequency points across
	// all sweeps plus I-V grid points (nil: disabled).
	Observer obs.Observer
}

// DefaultCampaign returns the measurement plan used across the experiments:
// a 0.5-3 GHz sweep at three bias points plus a cold pinched sweep and a
// DC I-V grid.
func DefaultCampaign(seed int64) CampaignConfig {
	return CampaignConfig{
		Freqs: mathx.Linspace(0.5e9, 3e9, 21),
		Biases: []device.Bias{
			{Vgs: 0.45, Vds: 3},
			{Vgs: 0.52, Vds: 3},
			{Vgs: 0.60, Vds: 3},
		},
		ColdVgs:     -1.2,
		ColdOpenVgs: 0.7,
		VgsGrid:     mathx.Linspace(0.2, 0.8, 13),
		VdsGrid:     mathx.Linspace(0.2, 4, 11),
		SigmaI:      0.01,
		Seed:        seed,
	}
}

// RunCampaign executes the measurement campaign against the device.
func RunCampaign(d *device.PHEMT, cfg CampaignConfig) (*Dataset, error) {
	if len(cfg.Freqs) == 0 || len(cfg.Biases) == 0 {
		return nil, fmt.Errorf("%w: campaign needs freqs and biases", ErrBadConfig)
	}
	_, endSpan := obs.StartSpan(cfg.Observer, "vna.campaign")
	v := NewVNA(cfg.Seed)
	if cfg.SigmaS > 0 {
		v.SigmaAbs = cfg.SigmaS
	}
	ds := &Dataset{Z0: v.z0()}
	for i, b := range cfg.Biases {
		v.Seed = cfg.Seed + int64(i) + 1
		net, err := v.MeasureDevice(d, b, cfg.Freqs)
		if err != nil {
			return nil, err
		}
		ds.Hot = append(ds.Hot, BiasSet{Bias: b, Net: net})
	}
	v.Seed = cfg.Seed + 1000
	cold := device.Bias{Vgs: cfg.ColdVgs, Vds: 0}
	coldNet, err := v.MeasureDevice(d, cold, cfg.Freqs)
	if err != nil {
		return nil, err
	}
	ds.ColdPinched = coldNet
	ds.ColdPinchedBias = cold

	v.Seed = cfg.Seed + 1001
	openVgs := cfg.ColdOpenVgs
	if openVgs == 0 {
		openVgs = 0.7
	}
	open := device.Bias{Vgs: openVgs, Vds: 0}
	openNet, err := v.MeasureDevice(d, open, cfg.Freqs)
	if err != nil {
		return nil, err
	}
	ds.ColdOpen = openNet
	ds.ColdOpenBias = open

	// DC grid with relative current noise.
	rng := rand.New(rand.NewSource(cfg.Seed + 2000))
	ds.VgsGrid = append([]float64(nil), cfg.VgsGrid...)
	ds.VdsGrid = append([]float64(nil), cfg.VdsGrid...)
	ds.IV = make([][]float64, len(cfg.VgsGrid))
	for i, vgs := range cfg.VgsGrid {
		ds.IV[i] = make([]float64, len(cfg.VdsGrid))
		for j, vds := range cfg.VdsGrid {
			ids := d.DC.Ids(vgs, vds)
			ds.IV[i][j] = ids * (1 + cfg.SigmaI*rng.NormFloat64())
		}
	}
	sweeps := len(cfg.Biases) + 2 // hot biases + two cold sweeps
	endSpan(int64(sweeps*len(cfg.Freqs) + len(cfg.VgsGrid)*len(cfg.VdsGrid)))
	return ds, nil
}

// NFMeter is a synthetic noise-figure analyzer.
type NFMeter struct {
	// SigmaDB is the NF measurement repeatability in dB (e.g. 0.05).
	SigmaDB float64
	// Seed drives the deterministic measurement noise.
	Seed int64
}

// MeasureNF returns the noise figure in dB of the noisy two-port produced
// by build(f), measured from a matched 50-ohm source at each frequency.
func (m *NFMeter) MeasureNF(freqs []float64, build func(f float64) (noise.TwoPort, error)) ([]float64, error) {
	rng := rand.New(rand.NewSource(m.Seed))
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		tp, err := build(f)
		if err != nil {
			return nil, fmt.Errorf("vna: NF at %g Hz: %w", f, err)
		}
		nf := mathx.DB10(tp.FigureY(complex(1.0/twoport.Z0Default, 0)))
		out[i] = nf + rng.NormFloat64()*m.SigmaDB
	}
	return out, nil
}

// GainPhaseNoiseFloorDB reports the VNA's effective dynamic range given its
// trace noise, a convenience for documentation and tests.
func (v *VNA) GainPhaseNoiseFloorDB() float64 {
	if v.SigmaAbs <= 0 {
		return math.Inf(-1)
	}
	return mathx.DB20(v.SigmaAbs)
}
