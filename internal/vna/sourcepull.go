package vna

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"gnsslna/internal/mathx"
	"gnsslna/internal/noise"
)

// SourcePullPoint is one noise-figure reading at a known source reflection.
type SourcePullPoint struct {
	// GammaS is the synthesized source reflection coefficient.
	GammaS complex128
	// FLinear is the measured noise figure as a linear ratio.
	FLinear float64
}

// SourcePullBench measures the noise figure of a device over a set of
// source impedances — the laboratory procedure behind noise-parameter
// extraction (a noise source plus an impedance tuner).
type SourcePullBench struct {
	// SigmaDB is the per-point NF measurement repeatability in dB.
	SigmaDB float64
	// Seed drives the deterministic measurement noise.
	Seed int64
	// Z0 is the reference impedance (default 50).
	Z0 float64
}

// DefaultTunerStates returns a well-conditioned set of source reflections:
// the matched point plus rings of states around the chart.
func DefaultTunerStates() []complex128 {
	out := []complex128{0}
	for _, mag := range []float64{0.3, 0.55, 0.75} {
		for k := 0; k < 6; k++ {
			out = append(out, cmplx.Rect(mag, 2*math.Pi*float64(k)/6))
		}
	}
	return out
}

// Measure runs the source pull against a noisy two-port at one frequency.
func (b *SourcePullBench) Measure(tp noise.TwoPort, states []complex128) ([]SourcePullPoint, error) {
	if len(states) < 4 {
		return nil, fmt.Errorf("%w: need >= 4 tuner states for 4 noise parameters", ErrBadConfig)
	}
	z0 := b.Z0
	if z0 <= 0 {
		z0 = 50
	}
	rng := rand.New(rand.NewSource(b.Seed))
	out := make([]SourcePullPoint, len(states))
	for i, g := range states {
		f := tp.Figure(g, z0)
		if math.IsInf(f, 1) {
			return nil, fmt.Errorf("vna: source pull state %v yields unusable F", g)
		}
		fdB := mathx.DB10(f) + rng.NormFloat64()*b.SigmaDB
		out[i] = SourcePullPoint{GammaS: g, FLinear: mathx.FromDB10(fdB)}
	}
	return out, nil
}
