package touchstone

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

// FuzzRead drives the Touchstone parser with arbitrary bytes. Properties:
// Read never panics; a successfully parsed network contains only finite
// values on a strictly increasing grid (the parser's contract); and writing
// it back in every format re-reads to the same network.
func FuzzRead(f *testing.F) {
	f.Add([]byte("# GHZ S MA R 50\n1.0 0.5 -30 2.0 100 0.05 60 0.4 -45\n"))
	f.Add([]byte("# MHZ S RI R 75\n100 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8\n200 0 0 0 0 0 0 0 0\n"))
	f.Add([]byte("# HZ S DB R 50\n1e9 -3 0 -400 90 -400 -90 -3 180\n"))
	f.Add([]byte("! comment only\n"))
	f.Add([]byte("# GHZ S MA R 50\n1 0 0 0 0 0 0 0 0\n2 1 0 1 0 1 0 1 0\n"))
	f.Add([]byte("# GHZ S DB R 50\n1 7000 0 0 0 0 0 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n.Len() == 0 {
			return
		}
		for i := 1; i < n.Len(); i++ {
			if n.Freqs[i] <= n.Freqs[i-1] {
				t.Fatalf("parsed grid not strictly increasing: %v", n.Freqs)
			}
		}
		for i, s := range n.S {
			for r := 0; r < 2; r++ {
				for c := 0; c < 2; c++ {
					if cmplx.IsNaN(s[r][c]) || cmplx.IsInf(s[r][c]) {
						t.Fatalf("parsed S[%d][%d][%d] = %v is not finite", i, r, c, s[r][c])
					}
				}
			}
		}
		// Frequencies above ~1e300 GHz lose the grid ordering when written
		// back with 9 significant digits; keep the round trip meaningful.
		if n.Freqs[n.Len()-1] > 1e300 {
			return
		}
		for _, format := range []Format{FormatMA, FormatDB, FormatRI} {
			var buf bytes.Buffer
			if err := Write(&buf, n, format, "fuzz round trip"); err != nil {
				t.Fatalf("%v: write: %v", format, err)
			}
			if strings.Contains(buf.String(), "Inf") || strings.Contains(buf.String(), "NaN") {
				t.Fatalf("%v: wrote non-finite tokens:\n%s", format, buf.String())
			}
			back, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				// A %.9g rewrite can collapse two frequencies closer than
				// one part in 1e9 onto the same value; that legitimate
				// precision loss is the only acceptable re-read failure.
				if closeFreqs(n.Freqs) {
					continue
				}
				t.Fatalf("%v: re-read failed: %v\ninput:\n%s", format, err, buf.String())
			}
			if back.Len() != n.Len() {
				t.Fatalf("%v: round trip changed length %d -> %d", format, n.Len(), back.Len())
			}
			for i := range n.S {
				for r := 0; r < 2; r++ {
					for c := 0; c < 2; c++ {
						a, b := n.S[i][r][c], back.S[i][r][c]
						// The dB floor clamps magnitudes below 1e-20 to
						// exactly 0-ish; compare against that contract.
						if format == FormatDB && cmplx.Abs(a) < 1e-19 {
							if cmplx.Abs(b) > 1e-19 {
								t.Fatalf("DB: sub-floor magnitude grew: %v -> %v", a, b)
							}
							continue
						}
						if d := cmplx.Abs(a - b); d > 1e-6*(1+cmplx.Abs(a)) {
							t.Fatalf("%v: S[%d][%d][%d] round trip %v -> %v (diff %g)",
								format, i, r, c, a, b, d)
						}
					}
				}
			}
		}
	})
}

// closeFreqs reports whether any adjacent grid pair is within one part in
// 1e8 — too close to survive a 9-significant-digit rewrite.
func closeFreqs(freqs []float64) bool {
	for i := 1; i < len(freqs); i++ {
		if freqs[i]-freqs[i-1] <= 1e-8*math.Abs(freqs[i]) {
			return true
		}
	}
	return false
}
