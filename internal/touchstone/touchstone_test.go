package touchstone

import (
	"bytes"
	"errors"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"gnsslna/internal/twoport"
)

func sampleNetwork(t *testing.T) *twoport.Network {
	t.Helper()
	freqs := []float64{1.1e9, 1.4e9, 1.7e9}
	s := []twoport.Mat2{
		{{cmplx.Rect(0.7, 2.1), cmplx.Rect(0.05, 1.0)}, {cmplx.Rect(5.0, 1.4), cmplx.Rect(0.3, -0.7)}},
		{{cmplx.Rect(0.6, 1.9), cmplx.Rect(0.06, 0.9)}, {cmplx.Rect(4.5, 1.2), cmplx.Rect(0.28, -0.8)}},
		{{cmplx.Rect(0.5, 1.7), cmplx.Rect(0.07, 0.8)}, {cmplx.Rect(4.0, 1.0), cmplx.Rect(0.26, -0.9)}},
	}
	n, err := twoport.NewNetwork(50, freqs, s)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func TestWriteReadRoundTripAllFormats(t *testing.T) {
	n := sampleNetwork(t)
	for _, f := range []Format{FormatMA, FormatDB, FormatRI} {
		var buf bytes.Buffer
		if err := Write(&buf, n, f, "round trip test"); err != nil {
			t.Fatalf("Write(%v): %v", f, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%v): %v", f, err)
		}
		if got.Len() != n.Len() {
			t.Fatalf("format %v: length %d, want %d", f, got.Len(), n.Len())
		}
		for i := range n.Freqs {
			if d := got.Freqs[i] - n.Freqs[i]; d > 1 || d < -1 {
				t.Errorf("format %v: freq[%d] = %g, want %g", f, i, got.Freqs[i], n.Freqs[i])
			}
			if d := twoport.MaxAbsDiff(got.S[i], n.S[i]); d > 1e-6 {
				t.Errorf("format %v: S[%d] differs by %g", f, i, d)
			}
		}
		if got.Z0 != 50 {
			t.Errorf("format %v: Z0 = %g, want 50", f, got.Z0)
		}
	}
}

// TestWriteZeroMagnitudeRoundTripAllFormats is the regression test for the
// FormatDB encoding of an exactly-zero S-parameter: dB(0) = -Inf used to be
// written verbatim, so a file produced by Write violated Read's own
// ErrNonFinite contract. The clamped floor must round-trip in every format.
func TestWriteZeroMagnitudeRoundTripAllFormats(t *testing.T) {
	freqs := []float64{1.2e9, 1.6e9}
	s := []twoport.Mat2{
		// S12 exactly zero (a perfectly unilateral idealization), plus a
		// zero S11 to exercise more than one zero per record.
		{{0, 0}, {cmplx.Rect(4.0, 1.0), cmplx.Rect(0.3, -0.5)}},
		{{cmplx.Rect(0.4, 2.0), 0}, {cmplx.Rect(3.5, 0.8), cmplx.Rect(0.28, -0.6)}},
	}
	n, err := twoport.NewNetwork(50, freqs, s)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for _, f := range []Format{FormatMA, FormatDB, FormatRI} {
		var buf bytes.Buffer
		if err := Write(&buf, n, f, ""); err != nil {
			t.Fatalf("Write(%v): %v", f, err)
		}
		if strings.Contains(buf.String(), "Inf") || strings.Contains(buf.String(), "NaN") {
			t.Fatalf("format %v wrote a non-finite field:\n%s", f, buf.String())
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%v) of our own Write output: %v", f, err)
		}
		for i := range n.Freqs {
			// The clamped zero must come back as a numerically-zero value
			// (|S| <= 1e-20, the -400 dB floor), everything else exact to
			// the usual round-trip tolerance.
			if d := twoport.MaxAbsDiff(got.S[i], n.S[i]); d > 1e-6 {
				t.Errorf("format %v: S[%d] differs by %g", f, i, d)
			}
		}
		if mag := cmplx.Abs(got.S[0][0][1]); mag > 1e-20 {
			t.Errorf("format %v: zero S12 came back with |S| = %g, want <= 1e-20", f, mag)
		}
	}
}

func TestReadHandCraftedMA(t *testing.T) {
	src := `! demo file
# MHz S MA R 50
1100  0.9 -60   4.8 120   0.05 30   0.5 -40
1500  0.8 -70   4.5 110   0.06 25   0.45 -45
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n.Len() != 2 {
		t.Fatalf("points = %d, want 2", n.Len())
	}
	if n.Freqs[0] != 1100e6 {
		t.Errorf("freq[0] = %g, want 1.1e9", n.Freqs[0])
	}
	wantS21 := cmplx.Rect(4.8, 120*3.14159265358979/180)
	if cmplx.Abs(n.S[0][1][0]-wantS21) > 1e-6 {
		t.Errorf("S21 = %v, want %v", n.S[0][1][0], wantS21)
	}
	// Column ordering check: S12 must be the small entry.
	if cmplx.Abs(n.S[0][0][1]) > 0.06 {
		t.Errorf("S12 magnitude = %g, want 0.05", cmplx.Abs(n.S[0][0][1]))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad field count": "# GHz S MA R 50\n1.0 0.5 0\n",
		"bad number":      "# GHz S MA R 50\n1.0 a 0 0 0 0 0 0 0\n",
		"bad param type":  "# GHz Y MA R 50\n",
		"unknown token":   "# GHz S XX R 50\n",
		"missing R value": "# GHz S MA R\n",
		"duplicate opts":  "# GHz S MA R 50\n# GHz S MA R 50\n",
		"empty":           "",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadDefaultsToGHzMA(t *testing.T) {
	// Without an option line Touchstone defaults apply; we still require a
	// record. (Strictly a missing option line is unusual but legal.)
	src := "1.575 0.9 -60 4.8 120 0.05 30 0.5 -40\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n.Freqs[0] != 1.575e9 {
		t.Errorf("freq = %g, want 1.575e9 (GHz default)", n.Freqs[0])
	}
}

func TestCommentWriting(t *testing.T) {
	n := sampleNetwork(t)
	var buf bytes.Buffer
	if err := Write(&buf, n, FormatDB, "line one\nline two"); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "! line one\n! line two\n") {
		t.Errorf("comment block malformed:\n%s", out)
	}
}

func TestReadNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary byte soup must produce an error or a valid
	// network, never a panic.
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("0123456789.eE+- #!RSMADGHZz\n\t")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %q: %v", trial, buf, r)
				}
			}()
			net, err := Read(bytes.NewReader(buf))
			if err == nil && net.Len() == 0 {
				t.Fatalf("trial %d: nil error with empty network", trial)
			}
		}()
	}
}

// TestReadRejectsCorruptNumericFields drives the parser over a table of
// corrupted fixtures: every malformed or non-finite numeric field must be
// rejected with a structured *FieldError naming its line, column and
// token, and non-finite values must satisfy errors.Is(err, ErrNonFinite).
func TestReadRejectsCorruptNumericFields(t *testing.T) {
	const header = "! corrupt fixture\n# GHZ S MA R 50\n"
	const good = "1.0 0.9 -30 2.0 45 0.05 60 0.5 -20\n"
	cases := []struct {
		name      string
		body      string
		line, col int
		token     string
		nonFinite bool
	}{
		{"nan-magnitude", good + "1.2 NaN -30 2.0 45 0.05 60 0.5 -20\n", 4, 2, "NaN", true},
		{"plus-inf-angle", good + "1.2 0.9 +Inf 2.0 45 0.05 60 0.5 -20\n", 4, 3, "+Inf", true},
		{"minus-inf-frequency", "-Inf 0.9 -30 2.0 45 0.05 60 0.5 -20\n", 3, 1, "-Inf", true},
		{"alphabetic-token", good + "1.2 0.9 -30 bogus 45 0.05 60 0.5 -20\n", 4, 4, "bogus", false},
		{"double-dot", "1..2 0.9 -30 2.0 45 0.05 60 0.5 -20\n", 3, 1, "1..2", false},
		{"trailing-garbage-field", good + good + "1.4 0.9 -30 2.0 45 0.05 60 0.5 -2x0\n", 5, 9, "-2x0", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(header + c.body))
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FieldError, got %v", err)
			}
			if fe.Line != c.line || fe.Col != c.col || fe.Token != c.token {
				t.Errorf("located (line %d, col %d, %q), want (line %d, col %d, %q)",
					fe.Line, fe.Col, fe.Token, c.line, c.col, c.token)
			}
			if got := errors.Is(err, ErrNonFinite); got != c.nonFinite {
				t.Errorf("errors.Is(err, ErrNonFinite) = %v, want %v", got, c.nonFinite)
			}
			if !strings.Contains(err.Error(), c.token) {
				t.Errorf("message %q does not name the offending token %q", err, c.token)
			}
		})
	}
}

// TestReadRejectsNonFiniteImpedance covers the option-line counterpart.
func TestReadRejectsNonFiniteImpedance(t *testing.T) {
	for _, bad := range []string{"NaN", "+Inf"} {
		if _, err := Read(strings.NewReader("# GHZ S MA R " + bad + "\n")); !errors.Is(err, ErrNonFinite) {
			t.Errorf("R %s accepted: %v", bad, err)
		}
	}
	if _, err := Read(strings.NewReader("# GHZ S MA R -50\n")); err == nil {
		t.Error("negative reference impedance accepted")
	}
}
