// Package touchstone reads and writes two-port Touchstone v1 (.s2p) files,
// the industry interchange format for measured S-parameters. The synthetic
// VNA writes them and the extraction CLI reads them, mirroring how the
// paper's measured data would flow between instruments and tools.
package touchstone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strconv"
	"strings"

	"gnsslna/internal/twoport"
)

// ErrNonFinite reports a numeric field that parsed but is NaN or ±Inf —
// values the S-parameter math downstream cannot consume, so they are
// rejected at the file boundary.
var ErrNonFinite = errors.New("non-finite value")

// FieldError locates a rejected numeric field in a Touchstone stream.
type FieldError struct {
	// Line is the 1-based input line; Col the 1-based whitespace-separated
	// field index within it.
	Line, Col int
	// Token is the offending field text.
	Token string
	// Err is the underlying cause: a strconv parse error or ErrNonFinite.
	Err error
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("touchstone: line %d: field %d: %q: %v", e.Line, e.Col, e.Token, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *FieldError) Unwrap() error { return e.Err }

// Format enumerates the Touchstone number formats.
type Format int

// Touchstone number formats.
const (
	FormatMA Format = iota + 1 // magnitude / angle(deg)
	FormatDB                   // dB(magnitude) / angle(deg)
	FormatRI                   // real / imaginary
)

// String returns the Touchstone token for the format.
func (f Format) String() string {
	switch f {
	case FormatMA:
		return "MA"
	case FormatDB:
		return "DB"
	case FormatRI:
		return "RI"
	default:
		return "??"
	}
}

// freqUnits maps Touchstone frequency-unit tokens to Hz multipliers.
var freqUnits = map[string]float64{
	"HZ": 1, "KHZ": 1e3, "MHZ": 1e6, "GHZ": 1e9,
}

// Read parses a two-port Touchstone v1 stream into a Network.
func Read(r io.Reader) (*twoport.Network, error) {
	sc := bufio.NewScanner(r)
	unit := 1e9 // Touchstone default is GHz
	format := FormatMA
	z0 := twoport.Z0Default
	sawOption := false
	var freqs []float64
	var mats []twoport.Mat2
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "!"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if sawOption {
				return nil, fmt.Errorf("touchstone: line %d: duplicate option line", lineNo)
			}
			sawOption = true
			var err error
			unit, format, z0, err = parseOption(line)
			if err != nil {
				return nil, fmt.Errorf("touchstone: line %d: %w", lineNo, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 9 {
			return nil, fmt.Errorf("touchstone: line %d: want 9 fields for a 2-port record, got %d", lineNo, len(fields))
		}
		vals := make([]float64, 9)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, &FieldError{Line: lineNo, Col: i + 1, Token: f, Err: err}
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, &FieldError{Line: lineNo, Col: i + 1, Token: f, Err: ErrNonFinite}
			}
			vals[i] = v
		}
		freqs = append(freqs, vals[0]*unit)
		// Touchstone 2-port ordering: S11 S21 S12 S22. A finite token pair
		// can still decode to a non-finite value (a dB magnitude beyond
		// ~6156 dB overflows 10^(a/20)), so the decoded value is checked
		// against the same ErrNonFinite contract as the raw fields.
		var m twoport.Mat2
		for _, p := range [4]struct{ col, r, c int }{{1, 0, 0}, {3, 1, 0}, {5, 0, 1}, {7, 1, 1}} {
			v := decode(vals[p.col], vals[p.col+1], format)
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				return nil, &FieldError{Line: lineNo, Col: p.col + 1, Token: fields[p.col], Err: ErrNonFinite}
			}
			m[p.r][p.c] = v
		}
		mats = append(mats, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("touchstone: %w", err)
	}
	return twoport.NewNetwork(z0, freqs, mats)
}

func parseOption(line string) (unit float64, format Format, z0 float64, err error) {
	unit, format, z0 = 1e9, FormatMA, twoport.Z0Default
	tokens := strings.Fields(strings.ToUpper(line[1:]))
	for i := 0; i < len(tokens); i++ {
		tok := tokens[i]
		switch {
		case tok == "S":
			// parameter type: only S supported
		case tok == "Y" || tok == "Z" || tok == "H" || tok == "G":
			return 0, 0, 0, fmt.Errorf("unsupported parameter type %q (only S)", tok)
		case tok == "MA":
			format = FormatMA
		case tok == "DB":
			format = FormatDB
		case tok == "RI":
			format = FormatRI
		case tok == "R":
			if i+1 >= len(tokens) {
				return 0, 0, 0, fmt.Errorf("option R missing impedance value")
			}
			i++
			z0, err = strconv.ParseFloat(tokens[i], 64)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("option R: %w", err)
			}
			if math.IsNaN(z0) || math.IsInf(z0, 0) {
				return 0, 0, 0, fmt.Errorf("option R: impedance %q: %w", tokens[i], ErrNonFinite)
			}
			if z0 <= 0 {
				return 0, 0, 0, fmt.Errorf("option R: impedance %q must be positive", tokens[i])
			}
		default:
			if u, ok := freqUnits[tok]; ok {
				unit = u
			} else {
				return 0, 0, 0, fmt.Errorf("unknown option token %q", tok)
			}
		}
	}
	return unit, format, z0, nil
}

func decode(a, b float64, f Format) complex128 {
	switch f {
	case FormatRI:
		return complex(a, b)
	case FormatDB:
		return cmplx.Rect(math.Pow(10, a/20), b*math.Pi/180)
	default: // MA
		return cmplx.Rect(a, b*math.Pi/180)
	}
}

// dbFloor is the magnitude floor used when encoding in FormatDB: dB of an
// exactly-zero magnitude is -Inf, which Read rejects under its own
// ErrNonFinite contract, so Write clamps to this finite floor instead. At
// -400 dB (|S| = 1e-20) the round-trip error is far below any measurable
// S-parameter yet every written record stays parseable.
const dbFloor = -400.0

func encode(v complex128, f Format) (a, b float64) {
	switch f {
	case FormatRI:
		return real(v), imag(v)
	case FormatDB:
		db := 20 * math.Log10(cmplx.Abs(v))
		if db < dbFloor {
			db = dbFloor
		}
		return db, cmplx.Phase(v) * 180 / math.Pi
	default:
		return cmplx.Abs(v), cmplx.Phase(v) * 180 / math.Pi
	}
}

// Write serializes a Network as a two-port Touchstone v1 file in the given
// format with frequencies in GHz.
func Write(w io.Writer, n *twoport.Network, format Format, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "! %s\n", l); err != nil {
				return fmt.Errorf("touchstone: write comment: %w", err)
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "# GHZ S %s R %g\n", format, n.Z0); err != nil {
		return fmt.Errorf("touchstone: write header: %w", err)
	}
	for i, f := range n.Freqs {
		s := n.S[i]
		a11, b11 := encode(s[0][0], format)
		a21, b21 := encode(s[1][0], format)
		a12, b12 := encode(s[0][1], format)
		a22, b22 := encode(s[1][1], format)
		_, err := fmt.Fprintf(bw,
			"%.9g %.9g %.9g %.9g %.9g %.9g %.9g %.9g %.9g\n",
			f/1e9, a11, b11, a21, b21, a12, b12, a22, b22)
		if err != nil {
			return fmt.Errorf("touchstone: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("touchstone: flush: %w", err)
	}
	return nil
}
