package match

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestLSectionMatchesRandomLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		zl := complex(5+rng.Float64()*200, (rng.Float64()*2-1)*100)
		if math.Abs(real(zl)-50) < 1 {
			continue // near-matched loads are a degenerate family
		}
		for _, lowpass := range []bool{true, false} {
			sec, err := DesignLSection(zl, 50, lowpass)
			if err != nil {
				t.Fatalf("trial %d: DesignLSection(%v): %v", trial, zl, err)
			}
			zin := sec.InputImpedance(zl)
			if cmplx.Abs(zin-50) > 1e-6 {
				t.Fatalf("trial %d (lowpass=%v): Zin = %v for load %v, want 50",
					trial, lowpass, zin, zl)
			}
		}
	}
}

func TestLSectionKnownCase(t *testing.T) {
	// Classic textbook case: match 200 ohm to 50 ohm. Q = sqrt(200/50-1) =
	// sqrt(3); shunt-first with B = +/- Q/RL, X = +/- Q*Z0... verify via
	// input impedance and element extraction.
	sec, err := DesignLSection(200, 50, true)
	if err != nil {
		t.Fatalf("DesignLSection: %v", err)
	}
	if !sec.ShuntFirst {
		t.Error("matching down from 200 ohm must put the shunt at the load")
	}
	if zin := sec.InputImpedance(200); cmplx.Abs(zin-50) > 1e-9 {
		t.Errorf("Zin = %v, want 50", zin)
	}
	// Element values at 1.575 GHz must be positive and sensible.
	lh, cf := sec.SeriesElement(1.575e9)
	if lh < 0 || cf < 0 {
		t.Error("negative element values")
	}
	if lh == 0 && cf == 0 {
		t.Error("series element missing")
	}
	lh2, cf2 := sec.ShuntElement(1.575e9)
	if lh2 == 0 && cf2 == 0 {
		t.Error("shunt element missing")
	}
}

func TestLSectionFamilySelection(t *testing.T) {
	// For a plain resistive 200->50 match both families exist; the flag
	// must select them.
	low, err := DesignLSection(200, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	high, err := DesignLSection(200, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(low.SeriesX >= 0 && low.ShuntB >= 0) {
		t.Errorf("lowpass family not honored: %+v", low)
	}
	if !(high.SeriesX < 0 && high.ShuntB < 0) {
		t.Errorf("highpass family not honored: %+v", high)
	}
}

func TestLSectionUnmatchable(t *testing.T) {
	if _, err := DesignLSection(complex(0, 50), 50, true); err == nil {
		t.Error("purely reactive load accepted")
	}
	if _, err := DesignLSection(100, -50, true); err == nil {
		t.Error("negative source accepted")
	}
}

func TestSingleStubMatchesRandomLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		zl := complex(10+rng.Float64()*150, (rng.Float64()*2-1)*80)
		for _, open := range []bool{true, false} {
			m, err := DesignSingleStub(zl, 50, open)
			if err != nil {
				t.Fatalf("trial %d: DesignSingleStub(%v): %v", trial, zl, err)
			}
			zin := m.InputImpedance(zl, 50)
			if cmplx.Abs(zin-50) > 1e-6 {
				t.Fatalf("trial %d (open=%v): Zin = %v for load %v (d=%.3f, l=%.3f)",
					trial, open, zin, zl, m.DistRad, m.StubRad)
			}
			if m.DistRad < 0 || m.DistRad > math.Pi {
				t.Fatalf("distance %g outside [0, pi]", m.DistRad)
			}
			if m.StubRad < 0 || m.StubRad > math.Pi {
				t.Fatalf("stub %g outside [0, pi]", m.StubRad)
			}
		}
	}
}

func TestSingleStubMatchedLoadShortcut(t *testing.T) {
	m, err := DesignSingleStub(50, 50, true)
	if err != nil {
		t.Fatalf("DesignSingleStub: %v", err)
	}
	if m.DistRad != 0 {
		t.Errorf("matched load needs no transformation, got d = %g", m.DistRad)
	}
	if zin := m.InputImpedance(50, 50); cmplx.Abs(zin-50) > 1e-9 {
		t.Errorf("Zin = %v", zin)
	}
}

func TestSingleStubRejectsReactiveLoad(t *testing.T) {
	if _, err := DesignSingleStub(complex(0, 30), 50, true); err == nil {
		t.Error("purely reactive load accepted")
	}
}
