package match_test

import (
	"fmt"
	"math/cmplx"

	"gnsslna/internal/match"
)

// ExampleDesignLSection matches a 100-j30 ohm load to 50 ohm and verifies
// the input impedance.
func ExampleDesignLSection() {
	sec, _ := match.DesignLSection(complex(100, -30), 50, true)
	zin := sec.InputImpedance(complex(100, -30))
	fmt.Printf("matched: %v\n", cmplx.Abs(zin-50) < 1e-9)
	// Output:
	// matched: true
}

// ExampleDesignSingleStub places a shunt open stub to match a complex load.
func ExampleDesignSingleStub() {
	m, _ := match.DesignSingleStub(complex(25, 40), 50, true)
	zin := m.InputImpedance(complex(25, 40), 50)
	fmt.Printf("matched: %v\n", cmplx.Abs(zin-50) < 1e-9)
	// Output:
	// matched: true
}
