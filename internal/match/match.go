// Package match synthesizes impedance matching networks analytically: the
// lumped L-section and the single-stub transmission-line match. The design
// flow uses numerical optimization for the full multi-band problem, but the
// analytic single-frequency solutions seed designs, provide sanity anchors
// in tests, and make the library useful as a standalone RF toolbox.
package match

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrUnmatchable reports a load that the requested topology cannot match
// (e.g. purely reactive loads).
var ErrUnmatchable = errors.New("match: load not matchable with this topology")

// LSection is a two-element matching network: a shunt susceptance on one
// side and a series reactance on the other, both specified at the design
// frequency as element values (negative inductance/capacitance never
// appears: the signs choose between L and C).
type LSection struct {
	// SeriesX is the series reactance in ohms (positive: inductor,
	// negative: capacitor).
	SeriesX float64
	// ShuntB is the shunt susceptance in siemens (positive: capacitor,
	// negative: inductor).
	ShuntB float64
	// ShuntFirst reports whether the shunt element faces the load
	// (true when the load resistance exceeds the source resistance).
	ShuntFirst bool
}

// SeriesElement returns the series element value at f: (inductance,
// capacitance), exactly one of which is non-zero.
func (l LSection) SeriesElement(f float64) (henries, farads float64) {
	w := 2 * math.Pi * f
	if l.SeriesX >= 0 {
		return l.SeriesX / w, 0
	}
	return 0, -1 / (w * l.SeriesX)
}

// ShuntElement returns the shunt element value at f: (inductance,
// capacitance), exactly one of which is non-zero.
func (l LSection) ShuntElement(f float64) (henries, farads float64) {
	w := 2 * math.Pi * f
	if l.ShuntB >= 0 {
		return 0, l.ShuntB / w
	}
	return -1 / (w * l.ShuntB), 0
}

// DesignLSection matches the complex load zl to a real source resistance
// r0 at a single frequency, returning the L-section with the high-pass or
// low-pass orientation selected by sign (lowpass true picks series-L /
// shunt-C when available).
func DesignLSection(zl complex128, r0 float64, lowpass bool) (LSection, error) {
	rl, xl := real(zl), imag(zl)
	if rl <= 0 || r0 <= 0 {
		return LSection{}, fmt.Errorf("%w: load %v, source %g", ErrUnmatchable, zl, r0)
	}
	if rl > r0 {
		// Shunt element at the load side: transform down.
		// Exact classical formulas (Pozar, Microwave Engineering, ch. 5):
		// B = (XL +/- sqrt(RL/Z0) * sqrt(RL^2 + XL^2 - Z0*RL)) / (RL^2 + XL^2)
		// X = 1/B + XL*Z0/RL - Z0/(B*RL)
		root := math.Sqrt(rl/r0) * math.Sqrt(rl*rl+xl*xl-r0*rl)
		den := rl*rl + xl*xl
		var best LSection
		found := false
		for _, sgn := range []float64{1, -1} {
			b := (xl + sgn*root) / den
			if b == 0 {
				continue
			}
			x := 1/b + xl*r0/rl - r0/(b*rl)
			cand := LSection{SeriesX: x, ShuntB: b, ShuntFirst: true}
			if !found || matchesFamily(cand, lowpass) {
				best = cand
				found = true
				if matchesFamily(cand, lowpass) {
					break
				}
			}
		}
		if !found {
			return LSection{}, ErrUnmatchable
		}
		return best, nil
	}
	// rl < r0: series element at the load side: transform up.
	// X = +/- sqrt(RL*(Z0-RL)) - XL, B = +/- sqrt((Z0-RL)/RL)/Z0.
	root := math.Sqrt(rl * (r0 - rl))
	var best LSection
	found := false
	for _, sgn := range []float64{1, -1} {
		x := sgn*root - xl
		b := sgn * math.Sqrt((r0-rl)/rl) / r0
		cand := LSection{SeriesX: x, ShuntB: b, ShuntFirst: false}
		if !found || matchesFamily(cand, lowpass) {
			best = cand
			found = true
			if matchesFamily(cand, lowpass) {
				break
			}
		}
	}
	if !found {
		return LSection{}, ErrUnmatchable
	}
	return best, nil
}

// matchesFamily reports whether the section is the lowpass (series-L,
// shunt-C) or highpass flavor.
func matchesFamily(l LSection, lowpass bool) bool {
	if lowpass {
		return l.SeriesX >= 0 && l.ShuntB >= 0
	}
	return l.SeriesX < 0 && l.ShuntB < 0
}

// InputImpedance evaluates the matched input impedance the section presents
// when terminated by zl, for verification.
func (l LSection) InputImpedance(zl complex128) complex128 {
	if l.ShuntFirst {
		// Shunt at the load, then series toward the source.
		y := 1/zl + complex(0, l.ShuntB)
		return 1/y + complex(0, l.SeriesX)
	}
	// Series at the load, then shunt toward the source.
	z := zl + complex(0, l.SeriesX)
	y := 1/z + complex(0, l.ShuntB)
	return 1 / y
}

// StubMatch is a single-stub shunt matching solution on a transmission
// line: a line length d from the load, then an open- or short-circuited
// stub of length lStub, both in electrical radians (beta*l).
type StubMatch struct {
	// DistRad is the electrical distance from the load to the stub.
	DistRad float64
	// StubRad is the electrical stub length.
	StubRad float64
	// Open reports whether the stub is open-circuited (else shorted).
	Open bool
}

// DesignSingleStub matches load zl to line impedance z0 with a shunt stub.
// It returns the solution with the shortest positive stub position.
func DesignSingleStub(zl complex128, z0 float64, open bool) (StubMatch, error) {
	if real(zl) <= 0 {
		return StubMatch{}, fmt.Errorf("%w: load %v", ErrUnmatchable, zl)
	}
	if cmplx.Abs(zl-complex(z0, 0)) < 1e-12 {
		return StubMatch{DistRad: 0, StubRad: stubLenFor(0, open), Open: open}, nil
	}
	// Distance solutions t = tan(beta*d) from the classical quadratic
	// (Pozar, Microwave Engineering, section 5.2).
	rl, xl := real(zl), imag(zl)
	var ts []float64
	if math.Abs(rl-z0) < 1e-12 {
		ts = []float64{-xl / (2 * z0)}
	} else {
		disc := rl * ((z0-rl)*(z0-rl) + xl*xl) / z0
		if disc < 0 {
			return StubMatch{}, ErrUnmatchable
		}
		sq := math.Sqrt(disc)
		ts = []float64{(xl + sq) / (rl - z0), (xl - sq) / (rl - z0)}
	}
	best := StubMatch{DistRad: math.Inf(1)}
	for _, t := range ts {
		d := math.Atan(t)
		for d < 0 {
			d += math.Pi
		}
		// Susceptance to cancel at the stub plane (absolute siemens),
		// normalized to the line for the stub-length formula.
		den := rl*rl + (xl+z0*t)*(xl+z0*t)
		b := (rl*rl*t - (z0-xl*t)*(xl+z0*t)) / (z0 * den)
		stub := stubLenFor(b*z0, open)
		if d < best.DistRad {
			best = StubMatch{DistRad: d, StubRad: stub, Open: open}
		}
	}
	if math.IsInf(best.DistRad, 1) {
		return StubMatch{}, ErrUnmatchable
	}
	return best, nil
}

// stubLenFor returns the electrical length of an open/short stub with input
// susceptance -b (normalized to 1/z0... here b is the absolute susceptance
// times z0 handled by caller convention: we need stub input susceptance
// Bstub = -B to cancel).
func stubLenFor(b float64, open bool) float64 {
	// Open stub: Bin = (1/z0) tan(beta l)  -> normalized tan(bl) = -b*z0.
	// Short stub: Bin = -(1/z0) cot(beta l) -> cot(bl) = b*z0.
	var l float64
	if open {
		l = math.Atan(-b)
	} else {
		l = math.Atan2(1, b)
	}
	for l < 0 {
		l += math.Pi
	}
	return l
}

// InputImpedance evaluates the matched line system terminated in zl, for
// verification: the load seen through distance DistRad with the stub in
// shunt at that plane, all on lines of impedance z0.
func (m StubMatch) InputImpedance(zl complex128, z0 float64) complex128 {
	zc := complex(z0, 0)
	// Transform the load along the line.
	t := complex(math.Tan(m.DistRad), 0)
	zd := zc * (zl + zc*1i*t) / (zc + zl*1i*t)
	// Stub input admittance.
	var ystub complex128
	if m.Open {
		ystub = complex(0, math.Tan(m.StubRad)) / zc
	} else {
		ystub = complex(0, -1/math.Tan(m.StubRad)) / zc
	}
	y := 1/zd + ystub
	return 1 / y
}
