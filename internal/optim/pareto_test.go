package optim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{3, 1}, []float64{2, 2}, false},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNonDominated(t *testing.T) {
	fs := [][]float64{
		{1, 5}, {2, 3}, {3, 4}, {4, 1}, {5, 5},
	}
	got := NonDominated(fs)
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("front size = %d, want %d (%v)", len(got), len(want), got)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("index %d should be dominated", i)
		}
	}
}

func TestHypervolume2DKnown(t *testing.T) {
	// Single point (1,1) with ref (3,3): box 2x2 = 4.
	if hv := Hypervolume2D([][]float64{{1, 1}}, [2]float64{3, 3}); math.Abs(hv-4) > 1e-12 {
		t.Errorf("hv = %g, want 4", hv)
	}
	// Two staircase points.
	fs := [][]float64{{1, 2}, {2, 1}}
	// Area = (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3.
	if hv := Hypervolume2D(fs, [2]float64{3, 3}); math.Abs(hv-3) > 1e-12 {
		t.Errorf("hv = %g, want 3", hv)
	}
	// Dominated point adds nothing.
	fs = append(fs, [][]float64{{2.5, 2.5}}...)
	if hv := Hypervolume2D(fs, [2]float64{3, 3}); math.Abs(hv-3) > 1e-12 {
		t.Errorf("hv with dominated point = %g, want 3", hv)
	}
	// Points outside the reference contribute nothing.
	if hv := Hypervolume2D([][]float64{{4, 4}}, [2]float64{3, 3}); hv != 0 {
		t.Errorf("out-of-box hv = %g, want 0", hv)
	}
}

func TestHypervolumeMonotoneProperty(t *testing.T) {
	// Adding a point never decreases hypervolume.
	f := func(seed int64) bool {
		rng := newRand(seed)
		ref := [2]float64{10, 10}
		var fs [][]float64
		prev := 0.0
		for k := 0; k < 10; k++ {
			fs = append(fs, []float64{rng.Float64() * 10, rng.Float64() * 10})
			hv := Hypervolume2D(fs, ref)
			if hv < prev-1e-12 {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpreadUniformVsClustered(t *testing.T) {
	uniform := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	clustered := [][]float64{{0, 4}, {0.1, 3.9}, {0.2, 3.8}, {0.3, 3.7}, {4, 0}}
	if su, sc := Spread(uniform), Spread(clustered); su >= sc {
		t.Errorf("uniform spread %g should beat clustered %g", su, sc)
	}
	if Spread(nil) != 0 || Spread([][]float64{{1, 2}}) != 0 {
		t.Error("degenerate spreads must be 0")
	}
}

func TestNSGA2OnConvexProblem(t *testing.T) {
	res, err := NSGA2(convexBi, biBox.lo, biBox.hi, &NSGA2Options{
		Pop: 60, Generations: 60, Seed: 21,
	})
	if err != nil {
		t.Fatalf("NSGA2: %v", err)
	}
	if len(res.F) < 10 {
		t.Fatalf("front too small: %d points", len(res.F))
	}
	// Every returned point must be near the analytic front
	// f2 = (2 - sqrt(f1))^2 for f1 in [0, 4].
	for _, f := range res.F {
		if f[0] < -1e-9 || f[0] > 4.5 {
			continue // extremes may be slightly past the segment
		}
		want := (2 - math.Sqrt(math.Max(f[0], 0))) * (2 - math.Sqrt(math.Max(f[0], 0)))
		if f[1]-want > 0.15 {
			t.Errorf("NSGA2 point %v is %g above the analytic front", f, f[1]-want)
		}
	}
	// Reasonable coverage: hypervolume close to analytic optimum (~10.83
	// for ref (5,5): integral of (5-f2(f1)) df1 ... just require > 80% of a
	// generous bound).
	hv := Hypervolume2D(res.F, [2]float64{5, 5})
	if hv < 18 {
		t.Errorf("NSGA2 hypervolume = %g, want > 18", hv)
	}
	if res.Evals == 0 {
		t.Error("evaluation count missing")
	}
}

func TestNSGA2CoversConcaveFront(t *testing.T) {
	res, err := NSGA2(concaveBi, biBox.lo, biBox.hi, &NSGA2Options{
		Pop: 60, Generations: 80, Seed: 8,
	})
	if err != nil {
		t.Fatalf("NSGA2: %v", err)
	}
	// The concave front middle (f1 ~ f2) must be populated.
	foundMiddle := false
	for _, f := range res.F {
		if math.Abs(f[0]-f[1]) < 0.1 && f[0] < 0.9 {
			foundMiddle = true
			break
		}
	}
	if !foundMiddle {
		t.Error("NSGA2 failed to populate the concave front middle")
	}
	if _, err := NSGA2(nil, nil, nil, nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestAttainmentError(t *testing.T) {
	goals := []Goal{{Target: 1, Weight: 2}, {Target: 0, Weight: 1}}
	// F = (3, 0.5): gamma = max((3-1)/2, 0.5/1) = 1.
	if e := AttainmentError([]float64{3, 0.5}, goals); math.Abs(e-1) > 1e-12 {
		t.Errorf("attainment error = %g, want 1", e)
	}
}
