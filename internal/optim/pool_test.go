package optim

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"gnsslna/internal/obs"
)

func TestEvalPoolWorkers(t *testing.T) {
	if got := NewEvalPool(0).Workers(); got != 1 {
		t.Fatalf("NewEvalPool(0).Workers() = %d, want 1", got)
	}
	if got := NewEvalPool(1).Workers(); got != 1 {
		t.Fatalf("NewEvalPool(1).Workers() = %d, want 1", got)
	}
	var nilPool *EvalPool
	if got := nilPool.Workers(); got != 1 {
		t.Fatalf("(*EvalPool)(nil).Workers() = %d, want 1", got)
	}
	if got := NewEvalPool(7).Workers(); got != 7 {
		t.Fatalf("NewEvalPool(7).Workers() = %d, want 7", got)
	}
}

func TestEvalPoolEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 237
		var hits [n]atomic.Int64
		NewEvalPool(workers).Each(n, func(i int) {
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestEvalPoolMapWritesByIndex(t *testing.T) {
	xs := make([][]float64, 50)
	for i := range xs {
		xs[i] = []float64{float64(i)}
	}
	out := make([]float64, len(xs))
	NewEvalPool(4).Map(func(x []float64) float64 { return 3 * x[0] }, xs, out)
	for i := range out {
		if out[i] != 3*float64(i) {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], 3*float64(i))
		}
	}
}

func TestEvalPoolPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic in fn did not propagate", workers)
				}
			}()
			NewEvalPool(workers).Each(64, func(i int) {
				if i == 17 {
					panic("objective exploded")
				}
			})
		}()
	}
}

// sameResult asserts bit-identical scalar-solver outcomes.
func samePoolResult(t *testing.T, name string, a, b Result, workers int) {
	t.Helper()
	if a.Evals != b.Evals {
		t.Fatalf("%s: Workers=%d evals %d != serial %d", name, workers, b.Evals, a.Evals)
	}
	if math.Float64bits(a.F) != math.Float64bits(b.F) {
		t.Fatalf("%s: Workers=%d F %v != serial %v", name, workers, b.F, a.F)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: Workers=%d dim %d != serial %d", name, workers, len(b.X), len(a.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("%s: Workers=%d X[%d] %v != serial %v", name, workers, i, b.X[i], a.X[i])
		}
	}
}

// doneEvals sums the eval counts of the done events a run journals — the
// tally the journal records for the run.
type doneEvals struct{ total int64 }

func (d *doneEvals) Observe(e obs.Event) {
	if e.Kind == obs.KindDone {
		d.total += e.Evals
	}
}

func workerCounts() []int {
	counts := []int{4}
	if n := runtime.NumCPU(); n != 4 && n > 1 {
		counts = append(counts, n)
	}
	return counts
}

func TestDEBitIdenticalAcrossWorkers(t *testing.T) {
	lo, hi := []float64{-2, -2}, []float64{2, 2}
	run := func(workers int) (Result, int64) {
		tally := &doneEvals{}
		res, err := DifferentialEvolution(rosenbrock, lo, hi, &DEOptions{
			Pop: 24, Generations: 60, Seed: 7, Workers: workers,
			Observer: obs.Func(tally.Observe),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tally.total
	}
	serial, serialEvals := run(1)
	for _, w := range workerCounts() {
		par, parEvals := run(w)
		samePoolResult(t, "DE", serial, par, w)
		if parEvals != serialEvals {
			t.Fatalf("DE: Workers=%d journaled evals %d != serial %d", w, parEvals, serialEvals)
		}
	}
}

func TestPSOBitIdenticalAcrossWorkers(t *testing.T) {
	lo, hi := []float64{-2, -2}, []float64{2, 2}
	run := func(workers int) (Result, int64) {
		tally := &doneEvals{}
		res, err := ParticleSwarm(rosenbrock, lo, hi, &PSOOptions{
			Pop: 24, Iterations: 60, Seed: 7, Workers: workers,
			Observer: obs.Func(tally.Observe),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tally.total
	}
	serial, serialEvals := run(1)
	for _, w := range workerCounts() {
		par, parEvals := run(w)
		samePoolResult(t, "PSO", serial, par, w)
		if parEvals != serialEvals {
			t.Fatalf("PSO: Workers=%d journaled evals %d != serial %d", w, parEvals, serialEvals)
		}
	}
}

func TestCMAESBitIdenticalAcrossWorkers(t *testing.T) {
	lo, hi := []float64{-2, -2}, []float64{2, 2}
	run := func(workers int) (Result, int64) {
		tally := &doneEvals{}
		res, err := CMAES(rosenbrock, lo, hi, &CMAESOptions{
			Generations: 80, Seed: 7, Workers: workers,
			Observer: obs.Func(tally.Observe),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tally.total
	}
	serial, serialEvals := run(1)
	for _, w := range workerCounts() {
		par, parEvals := run(w)
		samePoolResult(t, "CMA-ES", serial, par, w)
		if parEvals != serialEvals {
			t.Fatalf("CMA-ES: Workers=%d journaled evals %d != serial %d", w, parEvals, serialEvals)
		}
	}
}

func TestNSGA2BitIdenticalAcrossWorkers(t *testing.T) {
	obj := func(x []float64) []float64 {
		d := x[0] - 2
		return []float64{x[0]*x[0] + x[1]*x[1], d*d + x[1]*x[1]}
	}
	lo, hi := []float64{-4, -4}, []float64{4, 4}
	run := func(workers int) NSGA2Result {
		res, err := NSGA2(obj, lo, hi, &NSGA2Options{
			Pop: 24, Generations: 30, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range workerCounts() {
		par := run(w)
		if par.Evals != serial.Evals {
			t.Fatalf("NSGA-II: Workers=%d evals %d != serial %d", w, par.Evals, serial.Evals)
		}
		if len(par.X) != len(serial.X) {
			t.Fatalf("NSGA-II: Workers=%d front size %d != serial %d", w, len(par.X), len(serial.X))
		}
		for i := range serial.X {
			for j := range serial.X[i] {
				if math.Float64bits(par.X[i][j]) != math.Float64bits(serial.X[i][j]) {
					t.Fatalf("NSGA-II: Workers=%d X[%d][%d] %v != serial %v",
						w, i, j, par.X[i][j], serial.X[i][j])
				}
			}
			for j := range serial.F[i] {
				if math.Float64bits(par.F[i][j]) != math.Float64bits(serial.F[i][j]) {
					t.Fatalf("NSGA-II: Workers=%d F[%d][%d] %v != serial %v",
						w, i, j, par.F[i][j], serial.F[i][j])
				}
			}
		}
	}
}

func TestGoalAttainBitIdenticalAcrossWorkers(t *testing.T) {
	obj := func(x []float64) []float64 {
		d := x[0] - 2
		return []float64{x[0]*x[0] + x[1]*x[1], d*d + x[1]*x[1]}
	}
	goals := []Goal{{Target: 0, Weight: 1}, {Target: 0, Weight: 1}}
	lo, hi := []float64{-4, -4}, []float64{4, 4}
	run := func(workers int) AttainResult {
		res, err := GoalAttainImproved(obj, goals, lo, hi, &AttainOptions{
			Seed: 7, GlobalEvals: 1200, PolishEvals: 600, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range workerCounts() {
		par := run(w)
		if par.Evals != serial.Evals {
			t.Fatalf("attain: Workers=%d evals %d != serial %d", w, par.Evals, serial.Evals)
		}
		if math.Float64bits(par.Gamma) != math.Float64bits(serial.Gamma) {
			t.Fatalf("attain: Workers=%d gamma %v != serial %v", w, par.Gamma, serial.Gamma)
		}
		for i := range serial.X {
			if math.Float64bits(par.X[i]) != math.Float64bits(serial.X[i]) {
				t.Fatalf("attain: Workers=%d X[%d] %v != serial %v", w, i, par.X[i], serial.X[i])
			}
		}
	}
}

// TestCheckpointSnapshotsStayDefensive pins the contract that the buffer
// reuse in the hot loops must never extend to checkpoint snapshots: the
// state handed to a Checkpoint callback is a deep copy the continuing run
// cannot mutate.
func TestCheckpointSnapshotsStayDefensive(t *testing.T) {
	lo, hi := []float64{-2, -2}, []float64{2, 2}
	var first *DEState
	var firstXs [][]float64
	var firstFs []float64
	_, err := DifferentialEvolution(rosenbrock, lo, hi, &DEOptions{
		Pop: 24, Generations: 40, Seed: 7,
		Checkpoint: func(st DEState) {
			if first != nil {
				return
			}
			first = &st
			firstXs = copyMat(st.Xs)
			firstFs = append([]float64(nil), st.Fs...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("checkpoint callback never ran")
	}
	for i := range firstXs {
		for j := range firstXs[i] {
			if math.Float64bits(first.Xs[i][j]) != math.Float64bits(firstXs[i][j]) {
				t.Fatalf("snapshot Xs[%d][%d] mutated by the continuing run", i, j)
			}
		}
	}
	for i := range firstFs {
		if math.Float64bits(first.Fs[i]) != math.Float64bits(firstFs[i]) {
			t.Fatalf("snapshot Fs[%d] mutated by the continuing run", i)
		}
	}
}

// TestCopyMatIntoReusesRows pins the allocation-diet helper: matching shapes
// reuse the destination rows, mismatched shapes fall back to fresh copies.
func TestCopyMatIntoReusesRows(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	dst := [][]float64{{0, 0}, {0, 0}}
	row0 := &dst[0][0]
	out := copyMatInto(dst, src)
	if &out[0][0] != row0 {
		t.Fatal("copyMatInto allocated despite matching shapes")
	}
	if out[0][0] != 1 || out[1][1] != 4 {
		t.Fatalf("copyMatInto wrong values: %v", out)
	}
	src[0][0] = 99
	if out[0][0] == 99 {
		t.Fatal("copyMatInto aliased the source")
	}
	if fresh := copyMatInto(nil, src); &fresh[0] == &src[0] || fresh[0][0] != 99 {
		t.Fatalf("copyMatInto(nil, src) must deep-copy, got %v", fresh)
	}
}
