package optim

import (
	"time"

	"gnsslna/internal/obs"
)

// Default event scopes for the instrumented optimizers.
const (
	scopeCMAES  = "optim.cmaes"
	scopeDE     = "optim.de"
	scopePSO    = "optim.pso"
	scopeSA     = "optim.sa"
	scopeNSGA2  = "optim.nsga2"
	scopeLM     = "optim.lm"
	scopeNM     = "optim.nm"
	scopeAttain = "optim.attain"
)

// emitter funnels an optimizer loop's progress into an obs.Observer. It is
// a plain value (no pointer indirection, no allocation) and every method is
// a single branch when the observer is nil, so the optimizers can emit
// unconditionally from their hot loops.
type emitter struct {
	o     obs.Observer
	scope string
	start time.Time
}

// newEmitter resolves the scope (falling back to def) and stamps the run
// start for wall-time reporting.
func newEmitter(o obs.Observer, scope, def string) emitter {
	if scope == "" {
		scope = def
	}
	e := emitter{o: o, scope: scope}
	if o != nil {
		e.start = time.Now()
	}
	return e
}

func (e *emitter) wallMs() float64 {
	return float64(time.Since(e.start)) / float64(time.Millisecond)
}

// gen emits a per-generation convergence record.
func (e *emitter) gen(gen, evals int, best float64) {
	if e.o == nil {
		return
	}
	e.o.Observe(obs.Event{
		Kind:  obs.KindGeneration,
		Scope: e.scope,
		Gen:   gen,
		Evals: int64(evals),
		Best:  best,
		Value: e.wallMs(),
	})
}

// done closes the run with its total evaluation count and final best.
func (e *emitter) done(evals int, best float64) {
	if e.o == nil {
		return
	}
	e.o.Observe(obs.Event{
		Kind:  obs.KindDone,
		Scope: e.scope,
		Evals: int64(evals),
		Best:  best,
		Value: e.wallMs(),
	})
}

// sampleStride returns how many iterations to skip between generation
// events so a long scalar loop (simulated annealing's 20k iterations)
// journals at most ~maxRecords convergence records.
func sampleStride(iters, maxRecords int) int {
	if maxRecords <= 0 || iters <= maxRecords {
		return 1
	}
	return iters / maxRecords
}
