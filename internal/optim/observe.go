package optim

import (
	"context"
	"time"

	"gnsslna/internal/obs"
)

// Default event scopes for the instrumented optimizers.
const (
	scopeCMAES  = "optim.cmaes"
	scopeDE     = "optim.de"
	scopePSO    = "optim.pso"
	scopeSA     = "optim.sa"
	scopeNSGA2  = "optim.nsga2"
	scopeLM     = "optim.lm"
	scopeNM     = "optim.nm"
	scopeAttain = "optim.attain"
)

// emitter funnels an optimizer loop's progress into an obs.Observer. It is
// a plain value (no pointer indirection, no allocation) and every method is
// a single branch when the observer is nil, so the optimizers can emit
// unconditionally from their hot loops.
//
// When the observer is a *obs.Traced the emitter becomes the solver's run
// span: a child span is allocated up front, generation events carry their
// own per-generation spans (allocated by beginGen before each batch so pool
// workers can parent under them), and the done event closes the run span.
// For any other observer the span IDs stay zero and the emitted events are
// byte-identical to the pre-trace protocol.
type emitter struct {
	o       obs.Observer
	scope   string
	start   time.Time
	tr      *obs.Traced // run-span observer when o is traced, else nil
	genSpan obs.SpanID  // span of the generation currently evaluating
	ctx     context.Context
}

// newEmitter resolves the scope (falling back to def) and stamps the run
// start for wall-time reporting. A traced observer is narrowed to a fresh
// child span for the solver run.
func newEmitter(o obs.Observer, scope, def string) emitter {
	if scope == "" {
		scope = def
	}
	e := emitter{o: o, scope: scope}
	if o != nil {
		e.start = time.Now()
		if tr, ok := o.(*obs.Traced); ok {
			child := tr.NewChild()
			e.o, e.tr = child, child
		}
	}
	return e
}

// observer returns the observer nested stages should emit through, so their
// runs parent under this emitter's span when tracing is on.
func (e *emitter) observer() obs.Observer { return e.o }

func (e *emitter) wallMs() float64 {
	return float64(time.Since(e.start)) / float64(time.Millisecond)
}

// beginGen opens the span for the next generation's evaluation batch. It
// must run before the batch so worker spans observed during evaluation can
// parent under the generation; untraced it is a single nil check.
func (e *emitter) beginGen() {
	if e.tr != nil {
		e.genSpan = e.tr.Tracer().NewSpan()
	}
}

// batch assembles the trace context the EvalPool threads through one
// evaluation batch, or nil when untraced (the pool then runs the historical
// zero-overhead path).
func (e *emitter) batch() *batchTrace {
	if e.tr == nil {
		return nil
	}
	return &batchTrace{
		ctx:    e.ctx,
		tr:     e.tr,
		parent: e.genSpan,
		scope:  e.scope,
		det:    e.tr.Tracer().Outliers(),
	}
}

// gen emits a per-generation convergence record under the span beginGen
// opened (or span zero when untraced / never begun).
func (e *emitter) gen(gen, evals int, best float64) {
	if e.o == nil {
		return
	}
	e.o.Observe(obs.Event{
		Kind:  obs.KindGeneration,
		Scope: e.scope,
		Gen:   gen,
		Evals: int64(evals),
		Best:  best,
		Value: e.wallMs(),
		Span:  e.genSpan,
	})
}

// done closes the run with its total evaluation count and final best.
func (e *emitter) done(evals int, best float64) {
	if e.o == nil {
		return
	}
	e.o.Observe(obs.Event{
		Kind:  obs.KindDone,
		Scope: e.scope,
		Evals: int64(evals),
		Best:  best,
		Value: e.wallMs(),
	})
}

// profRun wraps one solver invocation in pprof labels (phase "optim" plus
// the solver name) so CPU profiles segment by algorithm; the labeled ctx is
// handed to the solver body for worker-level label derivation in the pool.
func profRun(solver string, body func(ctx context.Context) (Result, error)) (Result, error) {
	var res Result
	var err error
	obs.ProfDo("optim", solver, func(ctx context.Context) {
		res, err = body(ctx)
	})
	return res, err
}

// sampleStride returns how many iterations to skip between generation
// events so a long scalar loop (simulated annealing's 20k iterations)
// journals at most ~maxRecords convergence records.
func sampleStride(iters, maxRecords int) int {
	if maxRecords <= 0 || iters <= maxRecords {
		return 1
	}
	return iters / maxRecords
}
