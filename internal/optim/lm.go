package optim

import (
	"context"
	"math"

	"gnsslna/internal/mathx"
	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// ResidualFunc maps parameters to a residual vector; Levenberg-Marquardt
// minimizes the sum of squared residuals.
type ResidualFunc func(x []float64) []float64

// LMOptions configures Levenberg-Marquardt.
type LMOptions struct {
	// MaxIter caps outer iterations (default 200).
	MaxIter int
	// Tol is the relative cost-decrease tolerance (default 1e-12).
	Tol float64
	// Lambda0 is the initial damping (default 1e-3).
	Lambda0 float64
	// Lower and Upper optionally box-constrain the parameters (projected
	// steps). Nil means unconstrained.
	Lower, Upper []float64
	// Observer receives per-iteration convergence events; Best carries the
	// current half-sum-of-squares cost (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.lm").
	Scope string
	// Control is polled once per outer iteration; residual evaluations
	// (Jacobians count dim+1) are accounted against its budget. On a stop
	// the fit returns its current parameters alongside the
	// *resilience.Stopped error (nil: never stops).
	Control *resilience.RunController
}

// LMResult reports a Levenberg-Marquardt run.
type LMResult struct {
	// X is the final parameter vector.
	X []float64
	// Cost is the final 0.5 * sum of squared residuals.
	Cost float64
	// Iters is the number of accepted iterations.
	Iters int
	// Evals counts residual-vector evaluations (Jacobians count dim+1).
	Evals int
	// Converged reports whether the tolerance was met.
	Converged bool
}

// LevenbergMarquardt minimizes 0.5*||r(x)||^2 with damped Gauss-Newton steps
// and a numerical Jacobian.
func LevenbergMarquardt(r ResidualFunc, x0 []float64, opts *LMOptions) (LMResult, error) {
	var res LMResult
	var err error
	obs.ProfDo("optim", "lm", func(context.Context) {
		res, err = levenbergMarquardt(r, x0, opts)
	})
	return res, err
}

func levenbergMarquardt(r ResidualFunc, x0 []float64, opts *LMOptions) (LMResult, error) {
	n := len(x0)
	if n == 0 {
		return LMResult{}, ErrBadInput
	}
	maxIter, tol, lambda := 200, 1e-12, 1e-3
	var lower, upper []float64
	var observer obs.Observer
	var ctrl *resilience.RunController
	scope := ""
	if opts != nil {
		if opts.MaxIter > 0 {
			maxIter = opts.MaxIter
		}
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		if opts.Lambda0 > 0 {
			lambda = opts.Lambda0
		}
		lower, upper = opts.Lower, opts.Upper
		observer, scope = opts.Observer, opts.Scope
		ctrl = opts.Control
	}
	em := newEmitter(observer, scope, scopeLM)
	project := func(x []float64) {
		for i := range x {
			if lower != nil && x[i] < lower[i] {
				x[i] = lower[i]
			}
			if upper != nil && x[i] > upper[i] {
				x[i] = upper[i]
			}
		}
	}

	x := append([]float64(nil), x0...)
	project(x)
	evals := 0
	res := r(x)
	evals++
	ctrl.AddEvals(1)
	cost := halfSq(res)

	converged := false
	iters := 0
	for it := 0; it < maxIter; it++ {
		if err := ctrl.Check(); err != nil {
			em.done(evals, cost)
			return LMResult{X: x, Cost: cost, Iters: iters, Evals: evals, Converged: false}, err
		}
		j := mathx.Jacobian(func(p []float64) []float64 { return r(p) }, x)
		evals += n + 1
		ctrl.AddEvals(n + 1)
		jt := j.Transpose()
		jtj := jt.Mul(j)
		g := jt.MulVec(res)
		// Check gradient norm for stationarity.
		gn := 0.0
		for _, v := range g {
			gn += v * v
		}
		if math.Sqrt(gn) < 1e-15*(1+cost) {
			converged = true
			break
		}
		accepted := false
		for tries := 0; tries < 30; tries++ {
			a := jtj.Clone()
			for i := 0; i < n; i++ {
				a.Add(i, i, lambda*(jtj.At(i, i)+1e-12))
			}
			nb := make([]float64, n)
			for i := range nb {
				nb[i] = -g[i]
			}
			step, err := mathx.SolveR(a, nb)
			if err != nil {
				lambda *= 10
				continue
			}
			xNew := make([]float64, n)
			for i := range xNew {
				xNew[i] = x[i] + step[i]
			}
			project(xNew)
			rNew := r(xNew)
			evals++
			ctrl.AddEvals(1)
			cNew := halfSq(rNew)
			if cNew < cost {
				rel := (cost - cNew) / (1 + cost)
				x, res, cost = xNew, rNew, cNew
				lambda = math.Max(lambda/3, 1e-12)
				accepted = true
				iters++
				em.gen(iters, evals, cost)
				if rel < tol {
					converged = true
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !accepted || converged {
			if !accepted {
				converged = true // damping exhausted: local minimum to precision
			}
			break
		}
	}
	em.done(evals, cost)
	return LMResult{X: x, Cost: cost, Iters: iters, Evals: evals, Converged: converged}, nil
}

func halfSq(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s / 2
}
