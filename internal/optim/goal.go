package optim

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// VectorObjective maps a design vector to multiple objective values, all to
// be minimized.
type VectorObjective func(x []float64) []float64

// Goal is one design goal for goal attainment: drive objective i to at most
// Target, with Weight expressing how much over/under-attainment is
// acceptable relative to the other goals (Gembicki's w_i).
type Goal struct {
	// Name labels the goal in reports.
	Name string
	// Target is the desired value g_i of the (minimized) objective.
	Target float64
	// Weight is the relative attainment weight w_i (> 0).
	Weight float64
}

// AttainResult reports a goal-attainment run.
type AttainResult struct {
	// X is the best design found.
	X []float64
	// Gamma is the attainment factor: gamma <= 0 means every goal was met.
	// The scalarization baselines (WeightedSum, EpsilonConstraint) have no
	// attainment factor and report the NaN sentinel instead — check with
	// math.IsNaN before comparing, since NaN compares false against
	// everything.
	Gamma float64
	// F holds the objective values at X.
	F []float64
	// Evals counts vector-objective evaluations.
	Evals int
}

// AttainOptions configures the goal-attainment solvers.
type AttainOptions struct {
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// GlobalEvals budgets the global (DE) phase (default 6000).
	GlobalEvals int
	// PolishEvals budgets each local polish (default 4000).
	PolishEvals int
	// Observer receives per-generation convergence events from the nested
	// global/polish stages (under Scope+".de" / Scope+".nm") and a final
	// done event whose Best is the attainment factor gamma. The solver's
	// own done event reports only the evaluations it performed directly
	// (scale probing, final evaluation); the nested stages report their
	// own totals, so summing done-event evals never double-counts
	// (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.attain"); the global and
	// polish stages emit under Scope+".de" and Scope+".nm".
	Scope string
	// Control is threaded through the nested global/polish stages, which
	// poll it once per generation. On a stop the solver evaluates and
	// returns its best-so-far design alongside the *resilience.Stopped
	// error (nil: never stops).
	Control *resilience.RunController
	// Restarts bounds the jittered multi-start restarts of the improved
	// method after a circuit-breaker stop (0: single attempt). Stops for
	// external reasons (cancellation, deadline, budget) never restart.
	Restarts int
	// Workers bounds the goroutines used to evaluate candidate batches in
	// the scale probe and the nested DE stage (<= 1: serial). Randomness
	// stays on the driver goroutine, so results are bit-identical for any
	// worker count; obj must be safe for concurrent calls when Workers > 1.
	Workers int
}

func (o *AttainOptions) defaults() AttainOptions {
	out := AttainOptions{Seed: 1, GlobalEvals: 6000, PolishEvals: 4000}
	if o != nil {
		if o.Seed != 0 {
			out.Seed = o.Seed
		}
		if o.GlobalEvals > 0 {
			out.GlobalEvals = o.GlobalEvals
		}
		if o.PolishEvals > 0 {
			out.PolishEvals = o.PolishEvals
		}
		if o.Restarts > 0 {
			out.Restarts = o.Restarts
		}
		if o.Workers > 1 {
			out.Workers = o.Workers
		}
		out.Observer, out.Scope, out.Control = o.Observer, o.Scope, o.Control
	}
	return out
}

// scopeOr resolves the event scope, falling back to def.
func (o AttainOptions) scopeOr(def string) string {
	if o.Scope != "" {
		return o.Scope
	}
	return def
}

func validateGoals(obj VectorObjective, goals []Goal, lo, hi []float64) error {
	if obj == nil || len(goals) == 0 || len(lo) == 0 || len(lo) != len(hi) {
		return ErrBadInput
	}
	for i, g := range goals {
		if g.Weight <= 0 {
			return fmt.Errorf("%w: goal %d (%s) has non-positive weight", ErrBadInput, i, g.Name)
		}
	}
	return nil
}

// gammaOf is the Gembicki attainment factor: max_i (f_i - T_i)/w_i.
func gammaOf(f []float64, goals []Goal) float64 {
	g := math.Inf(-1)
	for i := range goals {
		v := (f[i] - goals[i].Target) / goals[i].Weight
		if v > g {
			g = v
		}
	}
	return g
}

// GoalAttainStandard solves the multi-objective problem with the classical
// goal-attainment formulation: minimize the (non-smooth) attainment factor
// gamma(x) = max_i (f_i(x)-T_i)/w_i directly with differential evolution
// followed by a Nelder-Mead polish. This is the baseline the paper
// improves upon.
func GoalAttainStandard(obj VectorObjective, goals []Goal, lo, hi []float64, opts *AttainOptions) (AttainResult, error) {
	var res AttainResult
	var err error
	obs.ProfDo("optim", "attain-std", func(ctx context.Context) {
		res, err = goalAttainStandard(ctx, obj, goals, lo, hi, opts)
	})
	return res, err
}

func goalAttainStandard(ctx context.Context, obj VectorObjective, goals []Goal, lo, hi []float64, opts *AttainOptions) (AttainResult, error) {
	if err := validateGoals(obj, goals, lo, hi); err != nil {
		return AttainResult{}, err
	}
	o := opts.defaults()
	em := newEmitter(o.Observer, o.Scope, scopeAttain)
	em.ctx = ctx
	// The scalarized objective is handed to DE, whose workers may call it
	// concurrently — the tally must be atomic to stay exact.
	var evals atomic.Int64
	scalar := func(x []float64) float64 {
		evals.Add(1)
		return gammaOf(obj(x), goals)
	}
	pop := 10 * len(lo)
	if pop < 20 {
		pop = 20
	}
	gens := o.GlobalEvals / pop
	if gens < 1 {
		gens = 1
	}
	de, err := DifferentialEvolution(scalar, lo, hi, &DEOptions{
		Pop: pop, Generations: gens, Seed: o.Seed, Workers: o.Workers,
		Observer: em.observer(), Scope: em.scope + ".de", Control: o.Control,
	})
	if err != nil {
		if _, ok := resilience.AsStopped(err); ok && len(de.X) > 0 {
			return attainFinish(obj, goals, lo, hi, o, &em, de.X, int(evals.Load()), de.Evals, err)
		}
		return AttainResult{}, err
	}
	nm, err := NelderMead(scalar, de.X, &NMOptions{
		MaxEvals: o.PolishEvals, Scale: 0.02,
		Observer: em.observer(), Scope: em.scope + ".nm", Control: o.Control,
	})
	if err != nil {
		if _, ok := resilience.AsStopped(err); ok && len(nm.X) > 0 {
			return attainFinish(obj, goals, lo, hi, o, &em, nm.X, int(evals.Load()), de.Evals+nm.Evals, err)
		}
		return AttainResult{}, err
	}
	return attainFinish(obj, goals, lo, hi, o, &em, nm.X, int(evals.Load()), de.Evals+nm.Evals, nil)
}

// attainFinish clamps and evaluates the final (possibly best-so-far) design,
// closes the emitter with only the directly performed evaluations (the
// nested stages report their own totals), and forwards the stop error, if
// any, so callers receive a usable partial result alongside it.
func attainFinish(obj VectorObjective, goals []Goal, lo, hi []float64, o AttainOptions, em *emitter, xBest []float64, evals, nested int, stopErr error) (AttainResult, error) {
	x := clampBox(xBest, lo, hi)
	o.Control.AddEvals(1)
	f := obj(x)
	gamma := gammaOf(f, goals)
	em.done(evals+1-nested, gamma)
	return AttainResult{X: x, Gamma: gamma, F: f, Evals: evals + 1}, stopErr
}

// ImprovedVariant switches off individual ingredients of the improved
// goal-attainment method for the ablation experiment.
type ImprovedVariant struct {
	// DisableNormalization skips the adaptive goal-range rescaling.
	DisableNormalization bool
	// DisableKS replaces the Kreisselmeier-Steinhauser envelope with the
	// raw non-smooth max in the polish stages.
	DisableKS bool
	// DisableSeeding skips the DE global stage (polish from a random
	// point).
	DisableSeeding bool
}

// GoalAttainImproved is the paper's improved goal-attainment method. Three
// modifications over the standard formulation:
//
//  1. Adaptive goal normalization: the weights are rescaled by the objective
//     ranges observed in the global population, so goals expressed in
//     different units (dB of noise vs dB of gain) attain at comparable
//     rates regardless of the caller's initial weight guess.
//  2. Kreisselmeier-Steinhauser smoothing: the non-smooth max() is replaced
//     by the KS envelope (1/rho) ln sum exp(rho z_i) with an increasing rho
//     schedule; each stage is warm-started from the previous solution, so
//     the local searches operate on a differentiable surrogate that
//     converges to the true minimax.
//  3. Hybrid seeding: a short DE run on the smoothed objective seeds the
//     polish stages, combining global reach with fast local convergence.
func GoalAttainImproved(obj VectorObjective, goals []Goal, lo, hi []float64, opts *AttainOptions) (AttainResult, error) {
	return GoalAttainImprovedVariant(obj, goals, lo, hi, opts, ImprovedVariant{})
}

// GoalAttainImprovedVariant runs the improved method with selected
// ingredients disabled, for the ablation study.
func GoalAttainImprovedVariant(obj VectorObjective, goals []Goal, lo, hi []float64, opts *AttainOptions, variant ImprovedVariant) (AttainResult, error) {
	if err := validateGoals(obj, goals, lo, hi); err != nil {
		return AttainResult{}, err
	}
	o := opts.defaults()
	if o.Restarts <= 0 {
		return goalAttainOnce(obj, goals, lo, hi, o, variant, o.Seed)
	}
	// Multi-start: rerun with jittered seeds when the breaker cuts an
	// attempt short, keeping the best attempt and the summed eval count.
	var best AttainResult
	haveBest := false
	total := 0
	policy := resilience.RestartPolicy{
		Seed: o.Seed, MaxRestarts: o.Restarts, Control: o.Control,
		Observer: o.Observer, Scope: o.scopeOr(scopeAttain) + ".restart",
	}
	_, _, err := policy.Run(func(seed int64) (float64, error) {
		r, aerr := goalAttainOnce(obj, goals, lo, hi, o, variant, seed)
		total += r.Evals
		if len(r.X) > 0 && (!haveBest || r.Gamma < best.Gamma) {
			best, haveBest = r, true
		}
		if len(r.X) == 0 {
			return math.Inf(1), aerr
		}
		return r.Gamma, aerr
	})
	best.Evals = total
	return best, err
}

// goalAttainOnce is one attempt of the improved goal-attainment method with
// the given seed.
func goalAttainOnce(obj VectorObjective, goals []Goal, lo, hi []float64, o AttainOptions, variant ImprovedVariant, seed int64) (AttainResult, error) {
	var res AttainResult
	var err error
	obs.ProfDo("optim", "attain", func(ctx context.Context) {
		res, err = attainOnce(ctx, obj, goals, lo, hi, o, variant, seed)
	})
	return res, err
}

// attainOnce is goalAttainOnce's body, running under the attain pprof labels.
func attainOnce(ctx context.Context, obj VectorObjective, goals []Goal, lo, hi []float64, o AttainOptions, variant ImprovedVariant, seed int64) (AttainResult, error) {
	o.Seed = seed
	em := newEmitter(o.Observer, o.Scope, scopeAttain)
	em.ctx = ctx
	// The smoothed objectives are handed to DE, whose workers may call them
	// concurrently — the tally must be atomic to stay exact.
	var evals atomic.Int64
	eval := func(x []float64) []float64 {
		evals.Add(1)
		return obj(x)
	}
	nested := 0 // evals reported by nested stages' own done events
	pool := NewEvalPool(o.Workers)

	// Stage 0: probe the box to learn objective scales. All probe points
	// are drawn first (keeping the RNG stream on the driver), then the
	// batch is evaluated through the pool and the spans are scanned in
	// index order — bit-identical for any worker count.
	scaled := make([]Goal, len(goals))
	copy(scaled, goals)
	if !variant.DisableNormalization {
		probePop := 4 * len(lo)
		if probePop < 16 {
			probePop = 16
		}
		rngSpan := make([][2]float64, len(goals))
		for i := range rngSpan {
			rngSpan[i] = [2]float64{math.Inf(1), math.Inf(-1)}
		}
		rng := newRand(o.Seed)
		px := make([][]float64, probePop)
		pf := make([][]float64, probePop)
		for p := range px {
			x := make([]float64, len(lo))
			for j := range x {
				x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			px[p] = x
		}
		// Probe evaluations are direct (not routed through a nested
		// solver's counter), so account them here, on the driver.
		o.Control.AddEvals(probePop)
		evals.Add(int64(probePop))
		pool.mapVector(obj, px, pf, em.batch())
		for _, f := range pf {
			for i, v := range f {
				if v < rngSpan[i][0] {
					rngSpan[i][0] = v
				}
				if v > rngSpan[i][1] {
					rngSpan[i][1] = v
				}
			}
		}
		for i := range scaled {
			span := rngSpan[i][1] - rngSpan[i][0]
			if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
				span = 1
			}
			// Blend the caller's weight with the observed span.
			scaled[i].Weight = goals[i].Weight * span
		}
	}

	ks := func(rho float64) Objective {
		return func(x []float64) float64 {
			f := eval(x)
			// KS envelope with max-shift for numerical stability. Two
			// passes over f avoid a per-call scratch slice, which also
			// keeps the closure safe for concurrent workers.
			zmax := math.Inf(-1)
			for i := range f {
				if z := (f[i] - scaled[i].Target) / scaled[i].Weight; z > zmax {
					zmax = z
				}
			}
			if variant.DisableKS {
				return zmax
			}
			var s float64
			for i := range f {
				z := (f[i] - scaled[i].Target) / scaled[i].Weight
				s += math.Exp(rho * (z - zmax))
			}
			return zmax + math.Log(s)/rho
		}
	}

	// Stage 1: global DE on a mildly smoothed surface.
	var x []float64
	if variant.DisableSeeding {
		rng := newRand(o.Seed)
		x = make([]float64, len(lo))
		for i := range x {
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
	} else {
		pop := 10 * len(lo)
		if pop < 20 {
			pop = 20
		}
		gens := o.GlobalEvals / pop
		if gens < 1 {
			gens = 1
		}
		de, err := DifferentialEvolution(ks(5), lo, hi, &DEOptions{
			Pop: pop, Generations: gens, Seed: o.Seed, Workers: o.Workers,
			Observer: em.observer(), Scope: em.scope + ".de", Control: o.Control,
		})
		nested += de.Evals
		if err != nil {
			if _, ok := resilience.AsStopped(err); ok && len(de.X) > 0 {
				return attainFinish(obj, goals, lo, hi, o, &em, de.X, int(evals.Load()), nested, err)
			}
			return AttainResult{}, err
		}
		x = de.X
	}

	// Stage 2: rho continuation with warm-started Nelder-Mead polishes.
	budget := o.PolishEvals / 3
	if budget < 200 {
		budget = 200
	}
	var stopErr error
	for _, rho := range []float64{20, 100, 500} {
		nm, err := NelderMead(ks(rho), x, &NMOptions{
			MaxEvals: budget, Scale: 0.02,
			Observer: em.observer(), Scope: em.scope + ".nm", Control: o.Control,
		})
		nested += nm.Evals
		if err != nil {
			if _, ok := resilience.AsStopped(err); !ok {
				return AttainResult{}, err
			}
			stopErr = err
			if len(nm.X) > 0 {
				x = clampBox(nm.X, lo, hi)
			}
			break
		}
		x = clampBox(nm.X, lo, hi)
	}
	return attainFinish(obj, goals, lo, hi, o, &em, x, int(evals.Load()), nested, stopErr)
}

// scalarizedAttain runs the shared DE-then-Nelder-Mead pipeline of the
// scalarization baselines, finishing with the NaN-gamma sentinel (see
// AttainResult.Gamma). A resilience stop returns the best-so-far design
// alongside the *resilience.Stopped error.
func scalarizedAttain(obj VectorObjective, scalar Objective, evals *atomic.Int64, lo, hi []float64, o AttainOptions, scope string) (AttainResult, error) {
	pop := 10 * len(lo)
	if pop < 20 {
		pop = 20
	}
	gens := o.GlobalEvals / pop
	if gens < 1 {
		gens = 1
	}
	finish := func(xBest []float64, stopErr error) (AttainResult, error) {
		x := clampBox(xBest, lo, hi)
		o.Control.AddEvals(1)
		f := obj(x)
		// Gamma is deliberately NaN: a scalarization has no attainment
		// factor, and the sentinel keeps the result shape uniform across
		// the multi-objective solvers. Callers must test it with
		// math.IsNaN, never with ==.
		return AttainResult{X: x, Gamma: math.NaN(), F: f, Evals: int(evals.Load()) + 1}, stopErr
	}
	de, err := DifferentialEvolution(scalar, lo, hi, &DEOptions{
		Pop: pop, Generations: gens, Seed: o.Seed, Workers: o.Workers,
		Observer: o.Observer, Scope: scope + ".de", Control: o.Control,
	})
	if err != nil {
		if _, ok := resilience.AsStopped(err); ok && len(de.X) > 0 {
			return finish(de.X, err)
		}
		return AttainResult{}, err
	}
	nm, err := NelderMead(scalar, de.X, &NMOptions{
		MaxEvals: o.PolishEvals, Scale: 0.02,
		Observer: o.Observer, Scope: scope + ".nm", Control: o.Control,
	})
	if err != nil {
		if _, ok := resilience.AsStopped(err); ok && len(nm.X) > 0 {
			return finish(nm.X, err)
		}
		return AttainResult{}, err
	}
	return finish(nm.X, nil)
}

// WeightedSum minimizes the scalarization sum_i w_i f_i(x) — the classical
// baseline that cannot reach concave regions of a Pareto front. The returned
// Gamma is the NaN sentinel (no attainment factor is defined for a
// scalarization); test it with math.IsNaN.
func WeightedSum(obj VectorObjective, weights []float64, lo, hi []float64, opts *AttainOptions) (AttainResult, error) {
	if obj == nil || len(weights) == 0 || len(lo) == 0 || len(lo) != len(hi) {
		return AttainResult{}, ErrBadInput
	}
	o := opts.defaults()
	var evals atomic.Int64
	scalar := func(x []float64) float64 {
		evals.Add(1)
		f := obj(x)
		var s float64
		for i, w := range weights {
			s += w * f[i]
		}
		return s
	}
	return scalarizedAttain(obj, scalar, &evals, lo, hi, o, o.scopeOr("optim.wsum"))
}

// EpsilonConstraint minimizes objective primary subject to f_i(x) <= eps_i
// for every other objective, via an exact penalty. The returned Gamma is the
// NaN sentinel (no attainment factor is defined for this scalarization);
// test it with math.IsNaN.
func EpsilonConstraint(obj VectorObjective, primary int, eps []float64, lo, hi []float64, opts *AttainOptions) (AttainResult, error) {
	if obj == nil || primary < 0 || len(eps) == 0 || len(lo) == 0 || len(lo) != len(hi) {
		return AttainResult{}, ErrBadInput
	}
	o := opts.defaults()
	var evals atomic.Int64
	const penalty = 1e4
	scalar := func(x []float64) float64 {
		evals.Add(1)
		f := obj(x)
		s := f[primary]
		for i, e := range eps {
			if i == primary {
				continue
			}
			if v := f[i] - e; v > 0 {
				s += penalty * v
			}
		}
		return s
	}
	return scalarizedAttain(obj, scalar, &evals, lo, hi, o, o.scopeOr("optim.epscon"))
}

func clampBox(x, lo, hi []float64) []float64 {
	out := append([]float64(nil), x...)
	for i := range out {
		if out[i] < lo[i] {
			out[i] = lo[i]
		}
		if out[i] > hi[i] {
			out[i] = hi[i]
		}
	}
	return out
}
