package optim

import (
	"bytes"
	"context"
	"runtime/pprof"
	"sync"
	"testing"

	"gnsslna/internal/obs"
)

// collectObserver is a concurrency-safe event recorder; pool workers emit
// worker spans from their own goroutines.
type collectObserver struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collectObserver) Observe(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// TestDETraceStructure runs a parallel DE under a traced observer and checks
// the causal shape the replay layer depends on: one run span parented under
// the root, per-generation spans parented under the run, and worker spans
// parented under their generation with 1-based worker ordinals.
func TestDETraceStructure(t *testing.T) {
	sink := &collectObserver{}
	tr := obs.NewTracerID(5)
	root := obs.NewTraced(sink, tr)

	res, err := DifferentialEvolution(sphere, []float64{-2, -2, -2}, []float64{2, 2, 2}, &DEOptions{
		Pop: 20, Generations: 10, Seed: 1, Workers: 2, Observer: root,
	})
	if err != nil {
		t.Fatal(err)
	}

	var done *obs.Event
	genSpans := map[obs.SpanID]bool{}
	var workers []obs.Event
	for _, e := range sink.events {
		if e.Trace != 5 {
			t.Fatalf("event trace = %d, want 5: %+v", e.Trace, e)
		}
		switch {
		case e.Kind == obs.KindDone:
			ev := e
			done = &ev
		case e.Kind == obs.KindGeneration:
			if e.Span == 0 {
				t.Fatalf("generation event without span: %+v", e)
			}
			genSpans[e.Span] = true
		case e.Kind == obs.KindSpanEnd && e.Worker > 0:
			workers = append(workers, e)
		}
	}

	if done == nil {
		t.Fatal("no done event")
	}
	if done.Span == 0 || done.Parent != root.Span() {
		t.Fatalf("run span = %d parent %d, want child of root %d", done.Span, done.Parent, root.Span())
	}
	if done.Best != res.F {
		t.Errorf("done best = %g, want solver result %g", done.Best, res.F)
	}
	if len(genSpans) == 0 {
		t.Fatal("no generation spans")
	}
	for _, e := range sink.events {
		if e.Kind == obs.KindGeneration && e.Parent != done.Span {
			t.Fatalf("generation span %d parented under %d, want run span %d", e.Span, e.Parent, done.Span)
		}
	}
	if len(workers) == 0 {
		t.Fatal("no worker spans from a 2-worker pool")
	}
	for _, e := range workers {
		if e.Scope != "optim.de.worker" {
			t.Errorf("worker span scope = %q", e.Scope)
		}
		if e.Worker < 1 || e.Worker > 2 {
			t.Errorf("worker ordinal = %d, want 1..2", e.Worker)
		}
		// The initial-population batch evaluates before the first generation
		// span opens, so its worker spans parent under the run span itself;
		// every later batch parents under its generation.
		if !genSpans[e.Parent] && e.Parent != done.Span {
			t.Errorf("worker span %d parented under %d, want a generation or the run span", e.Span, e.Parent)
		}
		if e.Evals <= 0 {
			t.Errorf("worker span claimed %d evals", e.Evals)
		}
	}

	// Tracing must not perturb the trajectory: the traced parallel run and a
	// bare serial run land on the identical result.
	plain, err := DifferentialEvolution(sphere, []float64{-2, -2, -2}, []float64{2, 2, 2}, &DEOptions{
		Pop: 20, Generations: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.F != res.F || plain.Evals != res.Evals {
		t.Errorf("traced parallel run diverged: F %g vs %g, evals %d vs %d",
			res.F, plain.F, res.Evals, plain.Evals)
	}
}

// TestConcurrentHubObserveFromPool drives a multi-worker traced run into a
// real Hub with an attached journal; under -race this proves the whole
// emission path — pool workers through Traced into registry and journal —
// is safe for concurrent emitters.
func TestConcurrentHubObserveFromPool(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	hub := obs.NewHub(nil, j)
	tr := obs.NewTracerID(11)
	tr.SetOutliers(obs.NewOutlierDetector())
	root := obs.NewTraced(hub, tr)

	if _, err := DifferentialEvolution(sphere, []float64{-2, -2, -2}, []float64{2, 2, 2}, &DEOptions{
		Pop: 24, Generations: 8, Seed: 3, Workers: 4, Observer: root,
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var gens, workerSpans int
	for _, r := range recs {
		switch r.Event {
		case "generation":
			gens++
		case "span-end":
			if r.Worker > 0 {
				workerSpans++
			}
		}
	}
	if gens == 0 || workerSpans == 0 {
		t.Fatalf("journal has %d generation and %d worker-span records", gens, workerSpans)
	}
	if hub.Registry().Snapshot().Counters["optim.de.evals"] == 0 {
		t.Error("hub registry missed the eval counter")
	}
}

// TestPoolWorkerProfLabels checks the pprof attribution inside pool workers:
// the phase/solver labels from the solver wrapper compose with the per-worker
// label on the worker goroutine.
func TestPoolWorkerProfLabels(t *testing.T) {
	checked := false
	obs.ProfDo("optim", "de", func(ctx context.Context) {
		wctx := obs.WorkerCtx(ctx, 1)
		labels := map[string]string{}
		pprof.ForLabels(wctx, func(k, v string) bool {
			labels[k] = v
			return true
		})
		for k, want := range map[string]string{"phase": "optim", "solver": "de", "worker": "1"} {
			if labels[k] != want {
				t.Errorf("worker ctx label %s = %q, want %q", k, labels[k], want)
			}
		}
		checked = true
	})
	if !checked {
		t.Fatal("ProfDo body did not run")
	}
}

// TestOutlierFlagging forces one pathological candidate through a traced
// batch and checks the flagged sample reaches the observer with the
// offending index.
func TestOutlierFlagging(t *testing.T) {
	sink := &collectObserver{}
	tr := obs.NewTracerID(13)
	det := obs.NewOutlierDetector()
	det.Warmup = 8
	tr.SetOutliers(det)
	root := obs.NewTraced(sink, tr)

	em := newEmitter(root, "", scopeDE)
	em.beginGen()
	bt := em.batch()
	if bt == nil {
		t.Fatal("traced emitter produced no batch trace")
	}
	for i := 0; i < 50; i++ {
		bt.observeEval(i, 1.0)
	}
	bt.observeEval(7, 5000)

	var flagged []obs.Event
	for _, e := range sink.events {
		if e.Kind == obs.KindSample && e.Scope == "optim.de.outlier" {
			flagged = append(flagged, e)
		}
	}
	if len(flagged) != 1 {
		t.Fatalf("flagged %d outliers, want exactly 1", len(flagged))
	}
	if flagged[0].Gen != 7 || flagged[0].Value != 5000 {
		t.Errorf("outlier = candidate %d at %gms, want 7/5000", flagged[0].Gen, flagged[0].Value)
	}
	if flagged[0].Trace != 13 || flagged[0].Span == 0 {
		t.Errorf("outlier event carries no trace identity: %+v", flagged[0])
	}
}
