package optim_test

import (
	"fmt"

	"gnsslna/internal/optim"
)

// ExampleGoalAttainImproved drives two competing objectives to their goals:
// gamma <= 0 means every goal was met.
func ExampleGoalAttainImproved() {
	obj := func(x []float64) []float64 {
		f1 := x[0]*x[0] + x[1]*x[1]
		d := x[0] - 2
		return []float64{f1, d*d + x[1]*x[1]}
	}
	goals := []optim.Goal{
		{Name: "f1", Target: 2.5, Weight: 1},
		{Name: "f2", Target: 2.5, Weight: 1},
	}
	res, _ := optim.GoalAttainImproved(obj, goals,
		[]float64{-4, -4}, []float64{4, 4}, &optim.AttainOptions{Seed: 7})
	fmt.Printf("goals met: %v\n", res.Gamma <= 0)
	// Output:
	// goals met: true
}

// ExampleDifferentialEvolution finds the Rosenbrock minimum.
func ExampleDifferentialEvolution() {
	rosen := func(x []float64) float64 {
		a := x[1] - x[0]*x[0]
		b := 1 - x[0]
		return 100*a*a + b*b
	}
	res, _ := optim.DifferentialEvolution(rosen,
		[]float64{-2, -2}, []float64{2, 2},
		&optim.DEOptions{Generations: 300, Seed: 1})
	fmt.Printf("x ~ [%.2f %.2f]\n", res.X[0], res.X[1])
	// Output:
	// x ~ [1.00 1.00]
}
