package optim

import (
	"math"
	"testing"
)

// convexBi is a simple bi-objective problem with a known convex Pareto
// front: f1 = x^2 + y^2, f2 = (x-2)^2 + y^2. The front is the segment
// x in [0, 2], y = 0 with f2 = (sqrt(f1)-2)^2.
func convexBi(x []float64) []float64 {
	f1 := x[0]*x[0] + x[1]*x[1]
	d := x[0] - 2
	f2 := d*d + x[1]*x[1]
	return []float64{f1, f2}
}

// concaveBi has a concave Pareto front (weighted sum cannot cover it):
// a variant of Fonseca-Fleming in 2-D.
func concaveBi(x []float64) []float64 {
	inv := 1 / math.Sqrt(2)
	var s1, s2 float64
	for _, v := range x {
		s1 += (v - inv) * (v - inv)
		s2 += (v + inv) * (v + inv)
	}
	return []float64{1 - math.Exp(-s1), 1 - math.Exp(-s2)}
}

var biBox = struct{ lo, hi []float64 }{
	lo: []float64{-4, -4},
	hi: []float64{4, 4},
}

func TestGoalAttainStandardHitsFeasibleGoals(t *testing.T) {
	// Goals (2.5, 2.5) are feasible (point x=1,y=0 gives (1,1)); gamma must
	// come out negative (over-attainment).
	goals := []Goal{
		{Name: "f1", Target: 2.5, Weight: 1},
		{Name: "f2", Target: 2.5, Weight: 1},
	}
	res, err := GoalAttainStandard(convexBi, goals, biBox.lo, biBox.hi, &AttainOptions{Seed: 7})
	if err != nil {
		t.Fatalf("GoalAttainStandard: %v", err)
	}
	if res.Gamma > 0 {
		t.Errorf("gamma = %g, want <= 0 for feasible goals (F = %v)", res.Gamma, res.F)
	}
	for i, g := range goals {
		if res.F[i] > g.Target+1e-6 {
			t.Errorf("goal %s missed: %g > %g", g.Name, res.F[i], g.Target)
		}
	}
}

func TestGoalAttainImprovedReachesParetoPoint(t *testing.T) {
	// With equal weights and goals at the ideal point (0, 0), the solution
	// must land on the Pareto front near its balanced point (1, 1).
	goals := []Goal{
		{Name: "f1", Target: 0, Weight: 1},
		{Name: "f2", Target: 0, Weight: 1},
	}
	res, err := GoalAttainImproved(convexBi, goals, biBox.lo, biBox.hi, &AttainOptions{Seed: 7})
	if err != nil {
		t.Fatalf("GoalAttainImproved: %v", err)
	}
	// The adaptive normalization balances in *range-normalized* units, so
	// the exact landing point depends on the observed spans; the essential
	// property is that it lands ON the Pareto front (f2 = (2-sqrt(f1))^2)
	// in its interior, away from the extremes.
	onFront := (2 - math.Sqrt(res.F[0])) * (2 - math.Sqrt(res.F[0]))
	if math.Abs(res.F[1]-onFront) > 0.02 {
		t.Errorf("point F = %v is off the analytic front (want f2 ~ %g)", res.F, onFront)
	}
	if res.F[0] < 0.3 || res.F[0] > 2.5 {
		t.Errorf("front point F = %v not in the balanced interior", res.F)
	}
}

func TestImprovedBeatsStandardOnSkewedScales(t *testing.T) {
	// Multiply f2 by 1000: the standard method with unit weights stalls on
	// the badly scaled objective; the improved method's adaptive
	// normalization must find a substantially better-balanced point.
	skewed := func(x []float64) []float64 {
		f := convexBi(x)
		return []float64{f[0], 1000 * f[1]}
	}
	goals := []Goal{
		{Name: "f1", Target: 0, Weight: 1},
		{Name: "f2", Target: 0, Weight: 1},
	}
	opts := &AttainOptions{Seed: 11, GlobalEvals: 3000, PolishEvals: 2000}
	std, err := GoalAttainStandard(skewed, goals, biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := GoalAttainImproved(skewed, goals, biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The standard method optimizes almost only f2 (weight swamped); the
	// improved one should keep f1 much smaller.
	if imp.F[0] >= std.F[0] {
		t.Logf("improved F = %v vs standard F = %v", imp.F, std.F)
		// Not strictly required on every seed, but the balanced distance
		// to the utopia point must not be worse.
		du := math.Hypot(imp.F[0], imp.F[1]/1000)
		ds := math.Hypot(std.F[0], std.F[1]/1000)
		if du > ds*1.05 {
			t.Errorf("improved method worse than standard on skewed scales: %g vs %g", du, ds)
		}
	}
}

func TestWeightedSumMissesConcaveFront(t *testing.T) {
	// On a concave front, weighted-sum lands at (or near) an extreme for
	// any weights, while improved goal attainment reaches the middle.
	goals := []Goal{
		{Name: "f1", Target: 0, Weight: 1},
		{Name: "f2", Target: 0, Weight: 1},
	}
	opts := &AttainOptions{Seed: 5}
	ga, err := GoalAttainImproved(concaveBi, goals, biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := WeightedSum(concaveBi, []float64{0.5, 0.5}, biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Balance metric: |f1 - f2| should be small for goal attainment.
	gaBal := math.Abs(ga.F[0] - ga.F[1])
	wsBal := math.Abs(ws.F[0] - ws.F[1])
	if gaBal > 0.1 {
		t.Errorf("goal attainment not balanced on concave front: F = %v", ga.F)
	}
	if wsBal < 0.5 {
		t.Errorf("weighted sum unexpectedly reached concave middle: F = %v", ws.F)
	}
}

func TestEpsilonConstraint(t *testing.T) {
	// Minimize f1 subject to f2 <= 1: on the convex problem the best is
	// f2 = 1 exactly, f1 = (2 - 1)^2 = 1.
	res, err := EpsilonConstraint(convexBi, 0, []float64{math.Inf(1), 1},
		biBox.lo, biBox.hi, &AttainOptions{Seed: 3})
	if err != nil {
		t.Fatalf("EpsilonConstraint: %v", err)
	}
	if res.F[1] > 1.01 {
		t.Errorf("constraint violated: f2 = %g > 1", res.F[1])
	}
	if math.Abs(res.F[0]-1) > 0.05 {
		t.Errorf("f1 = %g, want ~1", res.F[0])
	}
}

func TestGoalValidation(t *testing.T) {
	goals := []Goal{{Name: "bad", Target: 0, Weight: 0}}
	if _, err := GoalAttainStandard(convexBi, goals, biBox.lo, biBox.hi, nil); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := GoalAttainImproved(nil, nil, nil, nil, nil); err == nil {
		t.Error("nil objective accepted")
	}
	if _, err := WeightedSum(convexBi, nil, biBox.lo, biBox.hi, nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := EpsilonConstraint(convexBi, -1, nil, biBox.lo, biBox.hi, nil); err == nil {
		t.Error("bad primary index accepted")
	}
}

func TestGoalAttainParetoSweepTracesFront(t *testing.T) {
	// Sweeping the goal ray across weights must trace distinct front points
	// ordered along the front.
	var front [][]float64
	for _, w := range []float64{0.2, 0.5, 1, 2, 5} {
		goals := []Goal{
			{Name: "f1", Target: 0, Weight: w},
			{Name: "f2", Target: 0, Weight: 1},
		}
		res, err := GoalAttainImproved(convexBi, goals, biBox.lo, biBox.hi,
			&AttainOptions{Seed: 13, GlobalEvals: 3000, PolishEvals: 2000})
		if err != nil {
			t.Fatal(err)
		}
		front = append(front, res.F)
	}
	// f1 must increase along the sweep (larger w relaxes f1).
	for i := 1; i < len(front); i++ {
		if front[i][0] < front[i-1][0]-0.05 {
			t.Errorf("front not ordered: f1[%d] = %g < f1[%d] = %g",
				i, front[i][0], i-1, front[i-1][0])
		}
	}
	// All points near-Pareto: f2 ~ (2-sqrt(f1))^2 on this problem.
	for _, f := range front {
		want := (2 - math.Sqrt(f[0])) * (2 - math.Sqrt(f[0]))
		if math.Abs(f[1]-want) > 0.1 {
			t.Errorf("point %v off the analytic front (want f2 ~ %g)", f, want)
		}
	}
}

// TestScalarizationGammaIsNaNSentinel pins the documented contract: the
// scalarization baselines have no attainment factor, so Gamma must be the
// NaN sentinel — detectable only via math.IsNaN, never ==.
func TestScalarizationGammaIsNaNSentinel(t *testing.T) {
	opts := &AttainOptions{Seed: 9, GlobalEvals: 400, PolishEvals: 200}
	ws, err := WeightedSum(convexBi, []float64{0.5, 0.5}, biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatalf("WeightedSum: %v", err)
	}
	if !math.IsNaN(ws.Gamma) {
		t.Errorf("WeightedSum Gamma = %v, want NaN sentinel", ws.Gamma)
	}
	ec, err := EpsilonConstraint(convexBi, 0, []float64{math.Inf(1), 1},
		biBox.lo, biBox.hi, opts)
	if err != nil {
		t.Fatalf("EpsilonConstraint: %v", err)
	}
	if !math.IsNaN(ec.Gamma) {
		t.Errorf("EpsilonConstraint Gamma = %v, want NaN sentinel", ec.Gamma)
	}
	for _, r := range []AttainResult{ws, ec} {
		for i, f := range r.F {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Errorf("objective %d non-finite (%v) despite NaN-gamma sentinel", i, f)
			}
		}
	}
}
