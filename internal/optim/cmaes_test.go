package optim

import (
	"math"
	"testing"

	"gnsslna/internal/mathx"
)

func TestCMAESSphere(t *testing.T) {
	lo := []float64{-5, -5, -5, -5}
	hi := []float64{5, 5, 5, 5}
	res, err := CMAES(sphere, lo, hi, &CMAESOptions{Generations: 200, Seed: 3})
	if err != nil {
		t.Fatalf("CMAES: %v", err)
	}
	if res.F > 1e-8 {
		t.Errorf("CMAES on sphere: F = %g, want ~0 (x = %v)", res.F, res.X)
	}
}

func TestCMAESRosenbrock(t *testing.T) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	res, err := CMAES(rosenbrock, lo, hi, &CMAESOptions{Generations: 600, Seed: 5, Lambda: 12})
	if err != nil {
		t.Fatalf("CMAES: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("CMAES on Rosenbrock: x = %v, F = %g, want [1 1]", res.X, res.F)
	}
}

func TestCMAESIllConditionedQuadratic(t *testing.T) {
	// CMA-ES's selling point: adapt to a badly scaled, rotated quadratic.
	f := func(x []float64) float64 {
		u := x[0] + 0.8*x[1]
		v := x[1] - 0.8*x[0]
		return u*u + 1e4*v*v
	}
	res, err := CMAES(f, []float64{-3, -3}, []float64{3, 3},
		&CMAESOptions{Generations: 400, Seed: 7})
	if err != nil {
		t.Fatalf("CMAES: %v", err)
	}
	if res.F > 1e-6 {
		t.Errorf("ill-conditioned quadratic: F = %g (x = %v)", res.F, res.X)
	}
}

func TestCMAESRespectsBounds(t *testing.T) {
	res, err := CMAES(sphere, []float64{1, 1}, []float64{2, 2},
		&CMAESOptions{Generations: 100, Seed: 2})
	if err != nil {
		t.Fatalf("CMAES: %v", err)
	}
	for i, v := range res.X {
		if v < 1-1e-9 || v > 2+1e-9 {
			t.Errorf("x[%d] = %g outside [1, 2]", i, v)
		}
	}
	// Constrained optimum is the corner (1, 1).
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("constrained optimum = %v, want [1 1]", res.X)
	}
}

func TestCMAESBadInput(t *testing.T) {
	if _, err := CMAES(sphere, nil, nil, nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := CMAES(sphere, []float64{1}, []float64{0}, nil); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestJacobiEigenIdentityAndKnown(t *testing.T) {
	// Known 2x2: [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := mathx.MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	b, d := jacobiEigen(m)
	got := []float64{d[0] * d[0], d[1] * d[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Errorf("eigenvalues = %v, want [1 3]", got)
	}
	// Eigenvectors must be orthonormal: B^T B = I.
	bt := b.Transpose().Mul(b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(bt.At(i, j)-want) > 1e-9 {
				t.Errorf("B^T B [%d][%d] = %g, want %g", i, j, bt.At(i, j), want)
			}
		}
	}
}
