package optim

import (
	"math"
	"testing"

	"gnsslna/internal/obs"
)

// TestNopObserverZeroAlloc proves the emitter adds zero allocations per
// generation when the observer discards events — the contract that lets the
// instrumentation live in the optimizer inner loops permanently.
func TestNopObserverZeroAlloc(t *testing.T) {
	em := newEmitter(obs.Nop, "", scopeDE)
	allocs := testing.AllocsPerRun(1000, func() {
		em.gen(3, 120, 0.5)
		em.done(120, 0.5)
	})
	if allocs != 0 {
		t.Errorf("no-op observed emitter allocates %.1f/op, want 0", allocs)
	}

	emNil := newEmitter(nil, "", scopeDE)
	allocs = testing.AllocsPerRun(1000, func() {
		emNil.gen(3, 120, 0.5)
		emNil.done(120, 0.5)
	})
	if allocs != 0 {
		t.Errorf("nil-observer emitter allocates %.1f/op, want 0", allocs)
	}
}

// TestObservedDE checks the convergence stream of an instrumented run:
// monotone generation ordinals, growing eval counts, and a final done event
// whose totals match the optimizer's own result.
func TestObservedDE(t *testing.T) {
	var gens []obs.Event
	var done *obs.Event
	o := obs.Func(func(e obs.Event) {
		switch e.Kind {
		case obs.KindGeneration:
			gens = append(gens, e)
		case obs.KindDone:
			ev := e
			done = &ev
		}
	})
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	res, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{
		Pop: 20, Generations: 30, Seed: 1, Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 {
		t.Fatal("no generation events emitted")
	}
	prevEvals := int64(0)
	for i, e := range gens {
		if e.Scope != "optim.de" {
			t.Fatalf("generation %d scope = %q, want optim.de", i, e.Scope)
		}
		if e.Evals < prevEvals {
			t.Fatalf("generation %d evals %d < previous %d", i, e.Evals, prevEvals)
		}
		prevEvals = e.Evals
	}
	if done == nil {
		t.Fatal("no done event emitted")
	}
	if done.Evals != int64(res.Evals) {
		t.Errorf("done evals = %d, want optimizer's %d", done.Evals, res.Evals)
	}
	if done.Best != res.F {
		t.Errorf("done best = %g, want result F %g", done.Best, res.F)
	}
}

// TestAttainEvalAccounting runs the improved goal-attainment solver under a
// tally and checks that summing every done event reproduces the solver's
// reported eval total exactly — i.e. the nested DE/NM stages are attributed
// once, never double-counted.
func TestAttainEvalAccounting(t *testing.T) {
	obj := func(x []float64) []float64 {
		return []float64{sphere(x), math.Abs(x[0] - 1)}
	}
	goals := []Goal{
		{Name: "f0", Target: 0.1, Weight: 1},
		{Name: "f1", Target: 0.1, Weight: 1},
	}
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	tally := obs.NewTally(nil)
	res, err := GoalAttainImproved(obj, goals, lo, hi, &AttainOptions{
		Seed: 1, GlobalEvals: 600, PolishEvals: 300, Observer: tally,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tally.Evals(); got != int64(res.Evals) {
		t.Errorf("sum of done events = %d, want solver total %d", got, res.Evals)
	}
}

// BenchmarkDENopObserver measures the instrumented DE inner loop with a
// discarding observer; the report must show 0 allocs/op attributable to the
// instrumentation beyond the optimizer's own workspace.
func BenchmarkDENopObserver(b *testing.B) {
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{
			Pop: 15, Generations: 10, Seed: 1, Observer: obs.Nop,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmitterNop(b *testing.B) {
	em := newEmitter(obs.Nop, "", scopeDE)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		em.gen(i, i*10, 0.5)
	}
}
