package optim

import (
	"math"
	"math/rand"
	"sort"
)

// newRand centralizes deterministic RNG creation.
func newRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// Dominates reports whether point a Pareto-dominates point b (both
// minimized): a is no worse in every objective and strictly better in at
// least one.
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// NonDominated returns the indices of the Pareto-optimal points in fs.
func NonDominated(fs [][]float64) []int {
	var out []int
	for i := range fs {
		dominated := false
		for j := range fs {
			if i != j && Dominates(fs[j], fs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// Hypervolume2D computes the exact dominated hypervolume of a set of
// two-objective points relative to the reference point ref (both objectives
// minimized; points beyond ref contribute nothing).
func Hypervolume2D(fs [][]float64, ref [2]float64) float64 {
	// Keep the non-dominated points within the reference box.
	var pts [][]float64
	for _, f := range fs {
		if len(f) >= 2 && f[0] < ref[0] && f[1] < ref[1] {
			pts = append(pts, f)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	idx := NonDominated(pts)
	front := make([][]float64, len(idx))
	for i, j := range idx {
		front[i] = pts[j]
	}
	sort.Slice(front, func(a, b int) bool { return front[a][0] < front[b][0] })
	var hv float64
	prevY := ref[1]
	for _, p := range front {
		hv += (ref[0] - p[0]) * (prevY - p[1])
		prevY = p[1]
	}
	return hv
}

// Spread returns the spacing metric of a two-objective front: the standard
// deviation of consecutive-point distances along the front (lower = more
// uniform coverage).
func Spread(fs [][]float64) float64 {
	if len(fs) < 3 {
		return 0
	}
	front := append([][]float64(nil), fs...)
	sort.Slice(front, func(a, b int) bool { return front[a][0] < front[b][0] })
	dists := make([]float64, 0, len(front)-1)
	for i := 1; i < len(front); i++ {
		dx := front[i][0] - front[i-1][0]
		dy := front[i][1] - front[i-1][1]
		dists = append(dists, math.Hypot(dx, dy))
	}
	var mean float64
	for _, d := range dists {
		mean += d
	}
	mean /= float64(len(dists))
	var s float64
	for _, d := range dists {
		s += (d - mean) * (d - mean)
	}
	return math.Sqrt(s / float64(len(dists)))
}

// AttainmentError measures how far a produced front point sits from its
// aimed goal ray: |gamma| distance along the (normalized) goal direction.
// It is the per-point quality metric of the E4 experiment.
func AttainmentError(f []float64, goals []Goal) float64 {
	return math.Abs(gammaOf(f, goals))
}
