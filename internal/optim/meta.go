package optim

import (
	"context"
	"math"
	"math/rand"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// DEOptions configures differential evolution.
type DEOptions struct {
	// Pop is the population size (default 15 * dim, min 20).
	Pop int
	// Generations caps the number of generations (default 300).
	Generations int
	// F is the differential weight (default 0.7).
	F float64
	// CR is the crossover probability (default 0.9).
	CR float64
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Tol stops early when the population's objective spread falls below it
	// (default 0: run all generations).
	Tol float64
	// Workers bounds the goroutines used to evaluate each generation's trial
	// batch (<= 1: serial). All randomness stays on the driver goroutine and
	// results are consumed in index order, so the run is bit-identical for
	// any worker count; f must be safe for concurrent calls when Workers > 1.
	Workers int
	// Observer receives per-generation convergence events (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.de").
	Scope string
	// Control is polled once per generation; on a stop the run returns its
	// best member alongside the *resilience.Stopped error. A budget or
	// deadline can therefore overshoot by at most one generation of
	// evaluations (nil: never stops).
	Control *resilience.RunController
	// Checkpoint, when non-nil, receives a deep-copied state snapshot after
	// every generation for periodic persistence.
	Checkpoint func(DEState)
	// Resume, when non-nil, restores a checkpointed state: the population is
	// reinstated and the RNG stream fast-forwarded to its recorded position,
	// so the resumed run is bit-identical to an uninterrupted one with the
	// same options.
	Resume *DEState
}

// DEState is a differential-evolution checkpoint: everything needed to
// resume a run bit-identically.
type DEState struct {
	// Gen is the next generation to run.
	Gen int `json:"gen"`
	// Xs and Fs hold the population and its objective values.
	Xs [][]float64 `json:"xs"`
	Fs []float64   `json:"fs"`
	// Best indexes the best member of Xs.
	Best int `json:"best"`
	// Draws is the RNG stream position (counted source draws).
	Draws uint64 `json:"draws"`
	// Evals is the cumulative objective evaluation count.
	Evals int `json:"evals"`
}

// snapshotDE deep-copies the live population into a checkpoint.
func snapshotDE(gen int, xs [][]float64, fs []float64, best int, draws uint64, evals int) DEState {
	st := DEState{Gen: gen, Best: best, Draws: draws, Evals: evals}
	st.Xs = make([][]float64, len(xs))
	for i := range xs {
		st.Xs[i] = append([]float64(nil), xs[i]...)
	}
	st.Fs = append([]float64(nil), fs...)
	return st
}

// DifferentialEvolution minimizes f over the box [lo, hi] with the
// rand/1/bin strategy. The update is generational (batch-synchronous): every
// trial is built from the parent population, the whole batch is evaluated —
// across Workers goroutines when configured — and acceptance runs in index
// order, so the trajectory is bit-identical for any worker count.
func DifferentialEvolution(f Objective, lo, hi []float64, opts *DEOptions) (Result, error) {
	return profRun("de", func(ctx context.Context) (Result, error) {
		return differentialEvolution(ctx, f, lo, hi, opts)
	})
}

func differentialEvolution(ctx context.Context, f Objective, lo, hi []float64, opts *DEOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Result{}, ErrBadInput
		}
	}
	pop := 15 * n
	if pop < 20 {
		pop = 20
	}
	gens, fw, cr, seed, tol, workers := 300, 0.7, 0.9, int64(1), 0.0, 1
	var observer obs.Observer
	var ctrl *resilience.RunController
	var checkpoint func(DEState)
	var resume *DEState
	scope := ""
	if opts != nil {
		workers = opts.Workers
		if opts.Pop > 3 {
			pop = opts.Pop
		}
		if opts.Generations > 0 {
			gens = opts.Generations
		}
		if opts.F > 0 {
			fw = opts.F
		}
		if opts.CR > 0 {
			cr = opts.CR
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		observer, scope = opts.Observer, opts.Scope
		ctrl, checkpoint, resume = opts.Control, opts.Checkpoint, opts.Resume
	}
	em := newEmitter(observer, scope, scopeDE)
	em.ctx = ctx
	src := resilience.NewCountedSource(seed)
	rng := rand.New(src)
	c := &counter{f: f, ctrl: ctrl, em: &em}
	pool := NewEvalPool(workers)

	var xs [][]float64
	var fs []float64
	best, startGen := 0, 0
	if resume != nil {
		if len(resume.Xs) != pop || len(resume.Fs) != pop || resume.Best < 0 || resume.Best >= pop {
			return Result{}, ErrBadInput
		}
		xs = make([][]float64, pop)
		for i := range xs {
			if len(resume.Xs[i]) != n {
				return Result{}, ErrBadInput
			}
			xs[i] = append([]float64(nil), resume.Xs[i]...)
		}
		fs = append([]float64(nil), resume.Fs...)
		best, startGen, c.n = resume.Best, resume.Gen, resume.Evals
		src.FastForward(resume.Draws)
	} else {
		xs = make([][]float64, pop)
		fs = make([]float64, pop)
		for i := range xs {
			xs[i] = make([]float64, n)
			for j := range xs[i] {
				xs[i][j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
		}
		c.evalBatch(pool, xs, fs)
		for i := range fs {
			if fs[i] < fs[best] {
				best = i
			}
		}
	}

	// One flat backing array holds every trial: the rows never alias and the
	// whole matrix is recycled across generations (nothing here is retained —
	// accepted trials are copied into xs).
	trials := make([][]float64, pop)
	tbuf := make([]float64, pop*n)
	for i := range trials {
		trials[i] = tbuf[i*n : (i+1)*n : (i+1)*n]
	}
	tfs := make([]float64, pop)
	for g := startGen; g < gens; g++ {
		if err := ctrl.Check(); err != nil {
			em.done(c.n, fs[best])
			return Result{X: append([]float64(nil), xs[best]...), F: fs[best], Evals: c.n, Converged: false}, err
		}
		em.beginGen()
		for i := 0; i < pop; i++ {
			// Pick three distinct partners != i.
			var a, b, cc int
			for {
				a = rng.Intn(pop)
				if a != i {
					break
				}
			}
			for {
				b = rng.Intn(pop)
				if b != i && b != a {
					break
				}
			}
			for {
				cc = rng.Intn(pop)
				if cc != i && cc != a && cc != b {
					break
				}
			}
			jr := rng.Intn(n)
			trial := trials[i]
			for j := 0; j < n; j++ {
				if j == jr || rng.Float64() < cr {
					v := xs[a][j] + fw*(xs[b][j]-xs[cc][j])
					// Reflect into bounds.
					if v < lo[j] {
						v = lo[j] + (lo[j]-v)*rng.Float64()
						if v > hi[j] {
							v = lo[j] + rng.Float64()*(hi[j]-lo[j])
						}
					}
					if v > hi[j] {
						v = hi[j] - (v-hi[j])*rng.Float64()
						if v < lo[j] {
							v = lo[j] + rng.Float64()*(hi[j]-lo[j])
						}
					}
					trial[j] = v
				} else {
					trial[j] = xs[i][j]
				}
			}
		}
		c.evalBatch(pool, trials, tfs)
		for i := 0; i < pop; i++ {
			if tfs[i] <= fs[i] {
				copy(xs[i], trials[i])
				fs[i] = tfs[i]
				if fs[i] < fs[best] {
					best = i
				}
			}
		}
		em.gen(g, c.n, fs[best])
		if checkpoint != nil {
			checkpoint(snapshotDE(g+1, xs, fs, best, src.Draws(), c.n))
		}
		if tol > 0 {
			mn, mx := fs[0], fs[0]
			for _, v := range fs[1:] {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if mx-mn < tol*(1+math.Abs(mn)) {
				em.done(c.n, fs[best])
				return Result{X: append([]float64(nil), xs[best]...), F: fs[best], Evals: c.n, Converged: true}, nil
			}
		}
	}
	em.done(c.n, fs[best])
	return Result{X: append([]float64(nil), xs[best]...), F: fs[best], Evals: c.n, Converged: false}, nil
}

// PSOOptions configures particle-swarm optimization.
type PSOOptions struct {
	// Pop is the swarm size (default 10*dim, min 20).
	Pop int
	// Iterations caps the run (default 300).
	Iterations int
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Workers bounds the goroutines used to evaluate each iteration's
	// position batch (<= 1: serial). Randomness stays on the driver and
	// personal/global bests are updated in index order after the batch, so
	// the run is bit-identical for any worker count; f must be safe for
	// concurrent calls when Workers > 1.
	Workers int
	// Observer receives per-iteration convergence events (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.pso").
	Scope string
	// Control is polled once per iteration; on a stop the run returns the
	// global best alongside the *resilience.Stopped error (nil: never
	// stops).
	Control *resilience.RunController
	// Checkpoint, when non-nil, receives a deep-copied state snapshot after
	// every iteration for periodic persistence.
	Checkpoint func(PSOState)
	// Resume, when non-nil, restores a checkpointed state for a
	// bit-identical continuation (see DEOptions.Resume).
	Resume *PSOState
}

// PSOState is a particle-swarm checkpoint.
type PSOState struct {
	// It is the next iteration to run.
	It int `json:"it"`
	// X, V, Pb, Pf hold the particle positions, velocities, personal bests
	// and personal-best objective values.
	X  [][]float64 `json:"x"`
	V  [][]float64 `json:"v"`
	Pb [][]float64 `json:"pb"`
	Pf []float64   `json:"pf"`
	// Gb, Gf hold the global best position and value.
	Gb []float64 `json:"gb"`
	Gf float64   `json:"gf"`
	// Draws is the RNG stream position; Evals the cumulative count.
	Draws uint64 `json:"draws"`
	Evals int    `json:"evals"`
}

func copyMat(m [][]float64) [][]float64 {
	return copyMatInto(nil, m)
}

// copyMatInto deep-copies src into dst, reusing dst's rows when the shapes
// already match so hot loops that copy repeatedly (resume restoration,
// non-retained working state) stop churning allocations. Checkpoint
// snapshots handed to callers still go through a nil dst — they must stay
// defensive copies because the callback may retain them.
func copyMatInto(dst, src [][]float64) [][]float64 {
	if len(dst) != len(src) {
		dst = make([][]float64, len(src))
	}
	for i := range src {
		if len(dst[i]) != len(src[i]) {
			dst[i] = make([]float64, len(src[i]))
		}
		copy(dst[i], src[i])
	}
	return dst
}

// ParticleSwarm minimizes f over the box [lo, hi] with a standard
// constricted-velocity swarm. The update is batch-synchronous: every
// particle moves against the previous iteration's global best, the whole
// swarm is evaluated as one batch — across Workers goroutines when
// configured — and bests are updated in index order, so the trajectory is
// bit-identical for any worker count.
func ParticleSwarm(f Objective, lo, hi []float64, opts *PSOOptions) (Result, error) {
	return profRun("pso", func(ctx context.Context) (Result, error) {
		return particleSwarm(ctx, f, lo, hi, opts)
	})
}

func particleSwarm(ctx context.Context, f Objective, lo, hi []float64, opts *PSOOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	pop := 10 * n
	if pop < 20 {
		pop = 20
	}
	iters, seed, workers := 300, int64(1), 1
	var observer obs.Observer
	var ctrl *resilience.RunController
	var checkpoint func(PSOState)
	var resume *PSOState
	scope := ""
	if opts != nil {
		workers = opts.Workers
		if opts.Pop > 1 {
			pop = opts.Pop
		}
		if opts.Iterations > 0 {
			iters = opts.Iterations
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		observer, scope = opts.Observer, opts.Scope
		ctrl, checkpoint, resume = opts.Control, opts.Checkpoint, opts.Resume
	}
	em := newEmitter(observer, scope, scopePSO)
	em.ctx = ctx
	src := resilience.NewCountedSource(seed)
	rng := rand.New(src)
	c := &counter{f: f, ctrl: ctrl, em: &em}
	pool := NewEvalPool(workers)
	const (
		w  = 0.7298 // constriction
		c1 = 1.4962
		c2 = 1.4962
	)
	var x, v, pb [][]float64
	var pf, gb []float64
	gf := math.Inf(1)
	startIt := 0
	if resume != nil {
		if len(resume.X) != pop || len(resume.V) != pop || len(resume.Pb) != pop ||
			len(resume.Pf) != pop || len(resume.Gb) != n {
			return Result{}, ErrBadInput
		}
		x, v, pb = copyMat(resume.X), copyMat(resume.V), copyMat(resume.Pb)
		pf = append([]float64(nil), resume.Pf...)
		gb = append([]float64(nil), resume.Gb...)
		gf, startIt, c.n = resume.Gf, resume.It, resume.Evals
		src.FastForward(resume.Draws)
	} else {
		x = make([][]float64, pop)
		v = make([][]float64, pop)
		pb = make([][]float64, pop)
		pf = make([]float64, pop)
		gb = make([]float64, n)
		for i := range x {
			x[i] = make([]float64, n)
			v[i] = make([]float64, n)
			for j := range x[i] {
				span := hi[j] - lo[j]
				x[i][j] = lo[j] + rng.Float64()*span
				v[i][j] = (rng.Float64()*2 - 1) * span * 0.1
			}
			pb[i] = append([]float64(nil), x[i]...)
		}
		c.evalBatch(pool, x, pf)
		for i := range pf {
			if pf[i] < gf {
				gf = pf[i]
				copy(gb, x[i])
			}
		}
	}
	fxs := make([]float64, pop)
	for it := startIt; it < iters; it++ {
		if err := ctrl.Check(); err != nil {
			em.done(c.n, gf)
			return Result{X: append([]float64(nil), gb...), F: gf, Evals: c.n, Converged: false}, err
		}
		em.beginGen()
		for i := 0; i < pop; i++ {
			for j := 0; j < n; j++ {
				v[i][j] = w*v[i][j] +
					c1*rng.Float64()*(pb[i][j]-x[i][j]) +
					c2*rng.Float64()*(gb[j]-x[i][j])
				x[i][j] += v[i][j]
				if x[i][j] < lo[j] {
					x[i][j] = lo[j]
					v[i][j] = -0.5 * v[i][j]
				}
				if x[i][j] > hi[j] {
					x[i][j] = hi[j]
					v[i][j] = -0.5 * v[i][j]
				}
			}
		}
		c.evalBatch(pool, x, fxs)
		for i := 0; i < pop; i++ {
			if fxs[i] < pf[i] {
				pf[i] = fxs[i]
				copy(pb[i], x[i])
				if fxs[i] < gf {
					gf = fxs[i]
					copy(gb, x[i])
				}
			}
		}
		em.gen(it, c.n, gf)
		if checkpoint != nil {
			checkpoint(PSOState{
				It: it + 1, X: copyMat(x), V: copyMat(v), Pb: copyMat(pb),
				Pf: append([]float64(nil), pf...), Gb: append([]float64(nil), gb...),
				Gf: gf, Draws: src.Draws(), Evals: c.n,
			})
		}
	}
	em.done(c.n, gf)
	return Result{X: gb, F: gf, Evals: c.n, Converged: false}, nil
}

// SAOptions configures simulated annealing.
type SAOptions struct {
	// Iterations is the total annealing budget (default 20000).
	Iterations int
	// T0 is the initial temperature relative to the initial objective
	// magnitude (default 1.0).
	T0 float64
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Observer receives sampled convergence events — at most ~200 over the
	// run, so long anneals do not flood the journal (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.sa").
	Scope string
	// Control is polled once per iteration; on a stop the run returns the
	// best point alongside the *resilience.Stopped error (nil: never stops).
	Control *resilience.RunController
	// Checkpoint, when non-nil, receives a state snapshot at the same
	// sampled stride as the observer (at most ~200 per run).
	Checkpoint func(SAState)
	// Resume, when non-nil, restores a checkpointed state for a
	// bit-identical continuation (see DEOptions.Resume).
	Resume *SAState
}

// SAState is a simulated-annealing checkpoint.
type SAState struct {
	// It is the next iteration to run.
	It int `json:"it"`
	// X, Fx hold the current point and value; Best, Fb the incumbent.
	X    []float64 `json:"x"`
	Fx   float64   `json:"fx"`
	Best []float64 `json:"best"`
	Fb   float64   `json:"fb"`
	// Temp is the current annealing temperature.
	Temp float64 `json:"temp"`
	// Draws is the RNG stream position; Evals the cumulative count.
	Draws uint64 `json:"draws"`
	Evals int    `json:"evals"`
}

// SimulatedAnnealing minimizes f over the box [lo, hi] with geometric
// cooling and coordinate-wise Gaussian proposals.
func SimulatedAnnealing(f Objective, lo, hi []float64, opts *SAOptions) (Result, error) {
	return profRun("sa", func(context.Context) (Result, error) {
		return simulatedAnnealing(f, lo, hi, opts)
	})
}

func simulatedAnnealing(f Objective, lo, hi []float64, opts *SAOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	iters, t0, seed := 20000, 1.0, int64(1)
	var observer obs.Observer
	var ctrl *resilience.RunController
	var checkpoint func(SAState)
	var resume *SAState
	scope := ""
	if opts != nil {
		if opts.Iterations > 0 {
			iters = opts.Iterations
		}
		if opts.T0 > 0 {
			t0 = opts.T0
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		observer, scope = opts.Observer, opts.Scope
		ctrl, checkpoint, resume = opts.Control, opts.Checkpoint, opts.Resume
	}
	em := newEmitter(observer, scope, scopeSA)
	stride := sampleStride(iters, 200)
	src := resilience.NewCountedSource(seed)
	rng := rand.New(src)
	c := &counter{f: f, ctrl: ctrl}
	cool := math.Pow(1e-6, 1/float64(iters)) // end ~1e-6 of start
	var x, best []float64
	var fx, fb, temp float64
	startIt := 0
	if resume != nil {
		if len(resume.X) != n || len(resume.Best) != n {
			return Result{}, ErrBadInput
		}
		x = append([]float64(nil), resume.X...)
		best = append([]float64(nil), resume.Best...)
		fx, fb, temp = resume.Fx, resume.Fb, resume.Temp
		startIt, c.n = resume.It, resume.Evals
		src.FastForward(resume.Draws)
	} else {
		x = make([]float64, n)
		for j := range x {
			x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		fx = c.eval(x)
		best = append([]float64(nil), x...)
		fb = fx
		temp = t0 * (1 + math.Abs(fx))
	}
	cand := make([]float64, n)
	for it := startIt; it < iters; it++ {
		if err := ctrl.Check(); err != nil {
			em.done(c.n, fb)
			return Result{X: append([]float64(nil), best...), F: fb, Evals: c.n, Converged: false}, err
		}
		copy(cand, x)
		j := rng.Intn(n)
		sigma := 0.1 * (hi[j] - lo[j]) * math.Max(temp/(t0*(1+math.Abs(fb))), 0.01)
		cand[j] += rng.NormFloat64() * sigma
		if cand[j] < lo[j] {
			cand[j] = lo[j]
		}
		if cand[j] > hi[j] {
			cand[j] = hi[j]
		}
		fc := c.eval(cand)
		if fc <= fx || rng.Float64() < math.Exp((fx-fc)/temp) {
			copy(x, cand)
			fx = fc
			if fx < fb {
				fb = fx
				copy(best, x)
			}
		}
		temp *= cool
		if it%stride == 0 {
			em.gen(it, c.n, fb)
			if checkpoint != nil {
				checkpoint(SAState{
					It: it + 1, X: append([]float64(nil), x...), Fx: fx,
					Best: append([]float64(nil), best...), Fb: fb, Temp: temp,
					Draws: src.Draws(), Evals: c.n,
				})
			}
		}
	}
	em.done(c.n, fb)
	return Result{X: best, F: fb, Evals: c.n, Converged: false}, nil
}
