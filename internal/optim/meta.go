package optim

import (
	"math"
	"math/rand"

	"gnsslna/internal/obs"
)

// DEOptions configures differential evolution.
type DEOptions struct {
	// Pop is the population size (default 15 * dim, min 20).
	Pop int
	// Generations caps the number of generations (default 300).
	Generations int
	// F is the differential weight (default 0.7).
	F float64
	// CR is the crossover probability (default 0.9).
	CR float64
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Tol stops early when the population's objective spread falls below it
	// (default 0: run all generations).
	Tol float64
	// Observer receives per-generation convergence events (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.de").
	Scope string
}

// DifferentialEvolution minimizes f over the box [lo, hi] with the
// rand/1/bin strategy.
func DifferentialEvolution(f Objective, lo, hi []float64, opts *DEOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Result{}, ErrBadInput
		}
	}
	pop := 15 * n
	if pop < 20 {
		pop = 20
	}
	gens, fw, cr, seed, tol := 300, 0.7, 0.9, int64(1), 0.0
	var observer obs.Observer
	scope := ""
	if opts != nil {
		if opts.Pop > 3 {
			pop = opts.Pop
		}
		if opts.Generations > 0 {
			gens = opts.Generations
		}
		if opts.F > 0 {
			fw = opts.F
		}
		if opts.CR > 0 {
			cr = opts.CR
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		observer, scope = opts.Observer, opts.Scope
	}
	em := newEmitter(observer, scope, scopeDE)
	rng := rand.New(rand.NewSource(seed))
	c := &counter{f: f}

	xs := make([][]float64, pop)
	fs := make([]float64, pop)
	for i := range xs {
		xs[i] = make([]float64, n)
		for j := range xs[i] {
			xs[i][j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		fs[i] = c.eval(xs[i])
	}
	best := 0
	for i := range fs {
		if fs[i] < fs[best] {
			best = i
		}
	}

	trial := make([]float64, n)
	for g := 0; g < gens; g++ {
		for i := 0; i < pop; i++ {
			// Pick three distinct partners != i.
			var a, b, cc int
			for {
				a = rng.Intn(pop)
				if a != i {
					break
				}
			}
			for {
				b = rng.Intn(pop)
				if b != i && b != a {
					break
				}
			}
			for {
				cc = rng.Intn(pop)
				if cc != i && cc != a && cc != b {
					break
				}
			}
			jr := rng.Intn(n)
			for j := 0; j < n; j++ {
				if j == jr || rng.Float64() < cr {
					v := xs[a][j] + fw*(xs[b][j]-xs[cc][j])
					// Reflect into bounds.
					if v < lo[j] {
						v = lo[j] + (lo[j]-v)*rng.Float64()
						if v > hi[j] {
							v = lo[j] + rng.Float64()*(hi[j]-lo[j])
						}
					}
					if v > hi[j] {
						v = hi[j] - (v-hi[j])*rng.Float64()
						if v < lo[j] {
							v = lo[j] + rng.Float64()*(hi[j]-lo[j])
						}
					}
					trial[j] = v
				} else {
					trial[j] = xs[i][j]
				}
			}
			ft := c.eval(trial)
			if ft <= fs[i] {
				copy(xs[i], trial)
				fs[i] = ft
				if ft < fs[best] {
					best = i
				}
			}
		}
		em.gen(g, c.n, fs[best])
		if tol > 0 {
			mn, mx := fs[0], fs[0]
			for _, v := range fs[1:] {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if mx-mn < tol*(1+math.Abs(mn)) {
				em.done(c.n, fs[best])
				return Result{X: append([]float64(nil), xs[best]...), F: fs[best], Evals: c.n, Converged: true}, nil
			}
		}
	}
	em.done(c.n, fs[best])
	return Result{X: append([]float64(nil), xs[best]...), F: fs[best], Evals: c.n, Converged: false}, nil
}

// PSOOptions configures particle-swarm optimization.
type PSOOptions struct {
	// Pop is the swarm size (default 10*dim, min 20).
	Pop int
	// Iterations caps the run (default 300).
	Iterations int
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Observer receives per-iteration convergence events (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.pso").
	Scope string
}

// ParticleSwarm minimizes f over the box [lo, hi] with a standard
// constricted-velocity swarm.
func ParticleSwarm(f Objective, lo, hi []float64, opts *PSOOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	pop := 10 * n
	if pop < 20 {
		pop = 20
	}
	iters, seed := 300, int64(1)
	var observer obs.Observer
	scope := ""
	if opts != nil {
		if opts.Pop > 1 {
			pop = opts.Pop
		}
		if opts.Iterations > 0 {
			iters = opts.Iterations
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		observer, scope = opts.Observer, opts.Scope
	}
	em := newEmitter(observer, scope, scopePSO)
	rng := rand.New(rand.NewSource(seed))
	c := &counter{f: f}
	const (
		w  = 0.7298 // constriction
		c1 = 1.4962
		c2 = 1.4962
	)
	x := make([][]float64, pop)
	v := make([][]float64, pop)
	pb := make([][]float64, pop)
	pf := make([]float64, pop)
	gb := make([]float64, n)
	gf := math.Inf(1)
	for i := range x {
		x[i] = make([]float64, n)
		v[i] = make([]float64, n)
		for j := range x[i] {
			span := hi[j] - lo[j]
			x[i][j] = lo[j] + rng.Float64()*span
			v[i][j] = (rng.Float64()*2 - 1) * span * 0.1
		}
		pb[i] = append([]float64(nil), x[i]...)
		pf[i] = c.eval(x[i])
		if pf[i] < gf {
			gf = pf[i]
			copy(gb, x[i])
		}
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < pop; i++ {
			for j := 0; j < n; j++ {
				v[i][j] = w*v[i][j] +
					c1*rng.Float64()*(pb[i][j]-x[i][j]) +
					c2*rng.Float64()*(gb[j]-x[i][j])
				x[i][j] += v[i][j]
				if x[i][j] < lo[j] {
					x[i][j] = lo[j]
					v[i][j] = -0.5 * v[i][j]
				}
				if x[i][j] > hi[j] {
					x[i][j] = hi[j]
					v[i][j] = -0.5 * v[i][j]
				}
			}
			fx := c.eval(x[i])
			if fx < pf[i] {
				pf[i] = fx
				copy(pb[i], x[i])
				if fx < gf {
					gf = fx
					copy(gb, x[i])
				}
			}
		}
		em.gen(it, c.n, gf)
	}
	em.done(c.n, gf)
	return Result{X: gb, F: gf, Evals: c.n, Converged: false}, nil
}

// SAOptions configures simulated annealing.
type SAOptions struct {
	// Iterations is the total annealing budget (default 20000).
	Iterations int
	// T0 is the initial temperature relative to the initial objective
	// magnitude (default 1.0).
	T0 float64
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Observer receives sampled convergence events — at most ~200 over the
	// run, so long anneals do not flood the journal (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.sa").
	Scope string
}

// SimulatedAnnealing minimizes f over the box [lo, hi] with geometric
// cooling and coordinate-wise Gaussian proposals.
func SimulatedAnnealing(f Objective, lo, hi []float64, opts *SAOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	iters, t0, seed := 20000, 1.0, int64(1)
	var observer obs.Observer
	scope := ""
	if opts != nil {
		if opts.Iterations > 0 {
			iters = opts.Iterations
		}
		if opts.T0 > 0 {
			t0 = opts.T0
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		observer, scope = opts.Observer, opts.Scope
	}
	em := newEmitter(observer, scope, scopeSA)
	stride := sampleStride(iters, 200)
	rng := rand.New(rand.NewSource(seed))
	c := &counter{f: f}
	x := make([]float64, n)
	for j := range x {
		x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
	}
	fx := c.eval(x)
	best := append([]float64(nil), x...)
	fb := fx
	temp := t0 * (1 + math.Abs(fx))
	cool := math.Pow(1e-6, 1/float64(iters)) // end ~1e-6 of start
	cand := make([]float64, n)
	for it := 0; it < iters; it++ {
		copy(cand, x)
		j := rng.Intn(n)
		sigma := 0.1 * (hi[j] - lo[j]) * math.Max(temp/(t0*(1+math.Abs(fb))), 0.01)
		cand[j] += rng.NormFloat64() * sigma
		if cand[j] < lo[j] {
			cand[j] = lo[j]
		}
		if cand[j] > hi[j] {
			cand[j] = hi[j]
		}
		fc := c.eval(cand)
		if fc <= fx || rng.Float64() < math.Exp((fx-fc)/temp) {
			copy(x, cand)
			fx = fc
			if fx < fb {
				fb = fx
				copy(best, x)
			}
		}
		temp *= cool
		if it%stride == 0 {
			em.gen(it, c.n, fb)
		}
	}
	em.done(c.n, fb)
	return Result{X: best, F: fb, Evals: c.n, Converged: false}, nil
}
