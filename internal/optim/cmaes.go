package optim

import (
	"context"
	"math"
	"sort"

	"gnsslna/internal/mathx"
	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// CMAESOptions configures the covariance-matrix-adaptation evolution
// strategy.
type CMAESOptions struct {
	// Lambda is the population size (default 4 + 3*ln(dim)).
	Lambda int
	// Generations caps the run (default 300).
	Generations int
	// Sigma0 is the initial step size relative to the box span
	// (default 0.3).
	Sigma0 float64
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// Workers bounds the goroutines used to evaluate each generation's
	// sample batch (<= 1: serial). Sampling stays on the driver goroutine
	// and selection consumes results in index order, so the run is
	// bit-identical for any worker count; f must be safe for concurrent
	// calls when Workers > 1.
	Workers int
	// Observer receives per-generation convergence events (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.cmaes").
	Scope string
	// Control is polled once per generation; on a stop the run returns the
	// best feasible point alongside the *resilience.Stopped error
	// (nil: never stops).
	Control *resilience.RunController
}

// CMAES minimizes f over the box [lo, hi] with a (mu/mu_w, lambda)-CMA-ES
// (Hansen's standard formulation with rank-one and rank-mu updates,
// simplified to a diagonal-plus-full covariance handled by explicit
// eigendecomposition via Jacobi rotations).
func CMAES(f Objective, lo, hi []float64, opts *CMAESOptions) (Result, error) {
	return profRun("cmaes", func(ctx context.Context) (Result, error) {
		return cmaes(ctx, f, lo, hi, opts)
	})
}

func cmaes(ctx context.Context, f Objective, lo, hi []float64, opts *CMAESOptions) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, ErrBadInput
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Result{}, ErrBadInput
		}
	}
	lambda := 4 + int(3*math.Log(float64(n)))
	gens, sigmaRel, seed, workers := 300, 0.3, int64(1), 1
	var observer obs.Observer
	var ctrl *resilience.RunController
	scope := ""
	if opts != nil {
		if opts.Lambda > 3 {
			lambda = opts.Lambda
		}
		if opts.Generations > 0 {
			gens = opts.Generations
		}
		if opts.Sigma0 > 0 {
			sigmaRel = opts.Sigma0
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		workers = opts.Workers
		observer, scope = opts.Observer, opts.Scope
		ctrl = opts.Control
	}
	em := newEmitter(observer, scope, scopeCMAES)
	em.ctx = ctx
	rng := newRand(seed)
	c := &counter{f: f, ctrl: ctrl, em: &em}
	pool := NewEvalPool(workers)

	// Work in normalized coordinates u in [0,1]^n. Out-of-box samples are
	// evaluated at the clamped point plus a quadratic boundary penalty so
	// the selection gradient keeps pointing inward (plain clamping makes
	// the boundary flat and stalls the covariance adaptation).
	toXInto := func(x, u []float64) {
		for i := range x {
			v := mathx.Clamp(u[i], 0, 1)
			x[i] = lo[i] + v*(hi[i]-lo[i])
		}
	}
	boundaryPenalty := func(u []float64) float64 {
		var p float64
		for i := range u {
			if u[i] < 0 {
				p += u[i] * u[i]
			}
			if u[i] > 1 {
				p += (u[i] - 1) * (u[i] - 1)
			}
		}
		return p
	}

	mu := lambda / 2
	weights := make([]float64, mu)
	var wSum float64
	for i := range weights {
		weights[i] = math.Log(float64(mu)+0.5) - math.Log(float64(i+1))
		wSum += weights[i]
	}
	var muEff float64
	for i := range weights {
		weights[i] /= wSum
		muEff += weights[i] * weights[i]
	}
	muEff = 1 / muEff

	nf := float64(n)
	cc := (4 + muEff/nf) / (nf + 4 + 2*muEff/nf)
	cs := (muEff + 2) / (nf + muEff + 5)
	c1 := 2 / ((nf+1.3)*(nf+1.3) + muEff)
	cmu := math.Min(1-c1, 2*(muEff-2+1/muEff)/((nf+2)*(nf+2)+muEff))
	damps := 1 + 2*math.Max(0, math.Sqrt((muEff-1)/(nf+1))-1) + cs
	chiN := math.Sqrt(nf) * (1 - 1/(4*nf) + 1/(21*nf*nf))

	mean := make([]float64, n)
	for i := range mean {
		mean[i] = rng.Float64()
	}
	sigma := sigmaRel
	cov := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cov.Set(i, i, 1)
	}
	ps := make([]float64, n)
	pc := make([]float64, n)

	bestX := make([]float64, n)
	toXInto(bestX, mean)
	bestF := c.eval(bestX)

	// All per-generation working storage is allocated once and recycled:
	// the eigendecomposition workspace, the sample/candidate matrices and
	// the path/mean temporaries. Nothing below is retained across
	// generations except through explicit copies (bestX).
	eigWork := mathx.NewMatrix(n, n)
	b := mathx.NewMatrix(n, n)
	d := make([]float64, n)
	us := make([][]float64, lambda)
	xs := make([][]float64, lambda)
	ubuf := make([]float64, lambda*n)
	xbuf := make([]float64, lambda*n)
	for k := range us {
		us[k] = ubuf[k*n : (k+1)*n : (k+1)*n]
		xs[k] = xbuf[k*n : (k+1)*n : (k+1)*n]
	}
	rawf := make([]float64, lambda)
	penf := make([]float64, lambda)
	order := make([]int, lambda)
	z := make([]float64, n)
	y := make([]float64, n)
	oldMean := make([]float64, n)
	dm := make([]float64, n)
	cInvSqrtDM := make([]float64, n)
	tvec := make([]float64, n)

	for g := 0; g < gens; g++ {
		if err := ctrl.Check(); err != nil {
			em.done(c.n, bestF)
			return Result{X: bestX, F: bestF, Evals: c.n, Converged: false}, err
		}
		em.beginGen()
		// Eigendecomposition of cov: B D^2 B^T via Jacobi.
		jacobiEigenInto(cov, eigWork, b, d)
		for k := 0; k < lambda; k++ {
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			// y = B * D * z
			for i := 0; i < n; i++ {
				var s float64
				for j := 0; j < n; j++ {
					s += b.At(i, j) * d[j] * z[j]
				}
				y[i] = s
			}
			u := us[k]
			for i := range u {
				u[i] = mean[i] + sigma*y[i]
			}
			toXInto(xs[k], u)
		}
		c.evalBatch(pool, xs, rawf)
		for k := 0; k < lambda; k++ {
			raw := rawf[k]
			fx := raw
			if p := boundaryPenalty(us[k]); p > 0 {
				fx += (1 + math.Abs(raw)) * p * 100
			} else if raw < bestF {
				bestF = raw
				copy(bestX, xs[k])
			}
			penf[k] = fx
			order[k] = k
		}
		sort.Slice(order, func(a, bI int) bool { return penf[order[a]] < penf[order[bI]] })

		copy(oldMean, mean)
		for i := range mean {
			mean[i] = 0
			for k := 0; k < mu; k++ {
				mean[i] += weights[k] * us[order[k]][i]
			}
		}
		// Evolution paths.
		// C^(-1/2) * (mean-oldMean)/sigma = B * D^-1 * B^T * dm
		for i := range dm {
			dm[i] = (mean[i] - oldMean[i]) / sigma
		}
		{
			// t = B^T dm; t_i /= d_i; out = B t
			for i := 0; i < n; i++ {
				var s float64
				for j := 0; j < n; j++ {
					s += b.At(j, i) * dm[j]
				}
				tvec[i] = 0
				if d[i] > 1e-12 {
					tvec[i] = s / d[i]
				}
			}
			for i := 0; i < n; i++ {
				var s float64
				for j := 0; j < n; j++ {
					s += b.At(i, j) * tvec[j]
				}
				cInvSqrtDM[i] = s
			}
		}
		var psNorm float64
		for i := range ps {
			ps[i] = (1-cs)*ps[i] + math.Sqrt(cs*(2-cs)*muEff)*cInvSqrtDM[i]
			psNorm += ps[i] * ps[i]
		}
		psNorm = math.Sqrt(psNorm)
		hsig := 0.0
		if psNorm/math.Sqrt(1-math.Pow(1-cs, 2*float64(g+1)))/chiN < 1.4+2/(nf+1) {
			hsig = 1
		}
		for i := range pc {
			pc[i] = (1-cc)*pc[i] + hsig*math.Sqrt(cc*(2-cc)*muEff)*dm[i]
		}
		// Covariance update.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := (1 - c1 - cmu) * cov.At(i, j)
				v += c1 * (pc[i]*pc[j] + (1-hsig)*cc*(2-cc)*cov.At(i, j))
				for k := 0; k < mu; k++ {
					yi := (us[order[k]][i] - oldMean[i]) / sigma
					yj := (us[order[k]][j] - oldMean[j]) / sigma
					v += cmu * weights[k] * yi * yj
				}
				cov.Set(i, j, v)
			}
		}
		sigma *= math.Exp((cs / damps) * (psNorm/chiN - 1))
		em.gen(g, c.n, bestF)
		if sigma < 1e-12 {
			break
		}
	}
	em.done(c.n, bestF)
	return Result{X: bestX, F: bestF, Evals: c.n, Converged: false}, nil
}

// jacobiEigen computes the eigendecomposition of a symmetric matrix with
// cyclic Jacobi rotations, returning the eigenvector matrix B (columns) and
// the square roots of the (clamped-positive) eigenvalues.
func jacobiEigen(a *mathx.Matrix) (*mathx.Matrix, []float64) {
	n := a.Rows()
	v := mathx.NewMatrix(n, n)
	d := make([]float64, n)
	jacobiEigenInto(a, mathx.NewMatrix(n, n), v, d)
	return v, d
}

// jacobiEigenInto is jacobiEigen with caller-provided workspaces so hot
// loops can recycle them: m (clobbered working copy of a) and v must be
// n-by-n, d length n. On return v holds the eigenvectors and d the
// square-rooted eigenvalues.
func jacobiEigenInto(a, m, v *mathx.Matrix, d []float64) {
	n := a.Rows()
	m.CopyFrom(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				v.Set(i, j, 1)
			} else {
				v.Set(i, j, 0)
			}
		}
	}
	for sweep := 0; sweep < 30; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				theta := (m.At(q, q) - m.At(p, p)) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cth := 1 / math.Sqrt(t*t+1)
				sth := t * cth
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, cth*akp-sth*akq)
					m.Set(k, q, sth*akp+cth*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, cth*apk-sth*aqk)
					m.Set(q, k, sth*apk+cth*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, cth*vkp-sth*vkq)
					v.Set(k, q, sth*vkp+cth*vkq)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		ev := m.At(i, i)
		if ev < 1e-14 {
			ev = 1e-14
		}
		d[i] = math.Sqrt(ev)
	}
}
