package optim

import (
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	res, err := NelderMead(sphere, []float64{3, -2, 1.5}, nil)
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if res.F > 1e-9 {
		t.Errorf("final F = %g, want ~0", res.F)
	}
	if !res.Converged {
		t.Error("should converge on sphere")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	res, err := NelderMead(rosenbrock, []float64{-1.2, 1}, &NMOptions{MaxEvals: 20000})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("x = %v, want [1 1] (F = %g)", res.X, res.F)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	if _, err := NelderMead(sphere, nil, nil); err == nil {
		t.Error("empty x0 accepted")
	}
}

func TestHookeJeevesQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1)
	}
	res, err := HookeJeeves(f, []float64{0, 0}, &HJOptions{MaxEvals: 40000})
	if err != nil {
		t.Fatalf("HookeJeeves: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("x = %v, want [2 -1]", res.X)
	}
	if _, err := HookeJeeves(f, nil, nil); err == nil {
		t.Error("empty x0 accepted")
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, fx, evals := GoldenSection(f, -10, 10, 1e-9)
	if math.Abs(x-1.7) > 1e-7 {
		t.Errorf("argmin = %g, want 1.7", x)
	}
	if fx > 1e-12 {
		t.Errorf("min = %g, want ~0", fx)
	}
	if evals < 10 {
		t.Errorf("suspiciously few evals: %d", evals)
	}
	// Reversed interval must work too.
	if x2, _, _ := GoldenSection(f, 10, -10, 1e-9); math.Abs(x2-1.7) > 1e-7 {
		t.Errorf("reversed interval argmin = %g", x2)
	}
}

func TestLevenbergMarquardtCurveFit(t *testing.T) {
	// Fit y = a*exp(b*t) to exact data.
	ts := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	aTrue, bTrue := 2.0, -0.7
	ys := make([]float64, len(ts))
	for i, tt := range ts {
		ys[i] = aTrue * math.Exp(bTrue*tt)
	}
	resid := func(p []float64) []float64 {
		r := make([]float64, len(ts))
		for i, tt := range ts {
			r[i] = p[0]*math.Exp(p[1]*tt) - ys[i]
		}
		return r
	}
	res, err := LevenbergMarquardt(resid, []float64{1, 0}, nil)
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if math.Abs(res.X[0]-aTrue) > 1e-6 || math.Abs(res.X[1]-bTrue) > 1e-6 {
		t.Errorf("fit = %v, want [%g %g]", res.X, aTrue, bTrue)
	}
	if res.Cost > 1e-12 {
		t.Errorf("cost = %g, want ~0", res.Cost)
	}
	if !res.Converged {
		t.Error("LM should report convergence")
	}
}

func TestLevenbergMarquardtBounds(t *testing.T) {
	// Constrained: minimize (x-3)^2 with x <= 2 -> x = 2.
	resid := func(p []float64) []float64 { return []float64{p[0] - 3} }
	res, err := LevenbergMarquardt(resid, []float64{0}, &LMOptions{
		Lower: []float64{-1}, Upper: []float64{2},
	})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-9 {
		t.Errorf("bounded solution = %g, want 2", res.X[0])
	}
	if _, err := LevenbergMarquardt(resid, nil, nil); err == nil {
		t.Error("empty x0 accepted")
	}
}

func TestLevenbergMarquardtRosenbrockResiduals(t *testing.T) {
	// Rosenbrock as a residual system: r1 = 10(y - x^2), r2 = 1-x.
	resid := func(p []float64) []float64 {
		return []float64{10 * (p[1] - p[0]*p[0]), 1 - p[0]}
	}
	res, err := LevenbergMarquardt(resid, []float64{-1.2, 1}, &LMOptions{MaxIter: 500})
	if err != nil {
		t.Fatalf("LM: %v", err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Errorf("x = %v, want [1 1]", res.X)
	}
}
