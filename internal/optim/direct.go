// Package optim provides the optimization machinery of the paper's design
// flow: direct local methods (Nelder-Mead, Hooke-Jeeves, golden section,
// Levenberg-Marquardt), meta-heuristics (differential evolution, particle
// swarm, simulated annealing), and multi-objective methods — the standard
// goal-attainment method of Gembicki, the paper's improved goal-attainment
// variant, a weighted-sum baseline, epsilon-constraint scans and NSGA-II —
// plus Pareto-front utilities (dominance filtering, hypervolume, spread).
package optim

import (
	"context"
	"errors"
	"math"
	"sort"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// Objective is a scalar function to minimize.
type Objective func(x []float64) float64

// Result reports the outcome of a scalar minimization.
type Result struct {
	// X is the best point found.
	X []float64
	// F is the objective value at X.
	F float64
	// Evals is the number of objective evaluations consumed.
	Evals int
	// Converged reports whether the tolerance criterion was met before the
	// evaluation budget ran out.
	Converged bool
}

// ErrBadInput reports invalid optimizer input (empty vectors, inconsistent
// bounds).
var ErrBadInput = errors.New("optim: invalid input")

// counter wraps an objective with an evaluation counter. Only these leaf
// counters (and the few direct obj calls in goal.go) account evaluations
// against the resilience controller, so composite solvers never double-count.
// em, when set, supplies the trace context batch evaluations are attributed
// under (nil: untraced, the historical zero-overhead path).
type counter struct {
	f    Objective
	n    int
	ctrl *resilience.RunController
	em   *emitter
}

func (c *counter) eval(x []float64) float64 {
	c.n++
	c.ctrl.AddEvals(1)
	return c.f(x)
}

// NMOptions configures Nelder-Mead.
type NMOptions struct {
	// MaxEvals caps objective evaluations (default 2000 * dim).
	MaxEvals int
	// Tol is the simplex spread tolerance (default 1e-10).
	Tol float64
	// Scale is the initial simplex edge length (default 0.1 per coordinate,
	// scale-aware).
	Scale float64
	// Observer receives a KindDone event when the search finishes — the
	// polish stages run too many simplex iterations to journal each one
	// (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.nm").
	Scope string
	// Control is polled once per simplex iteration; on a stop the search
	// returns its best vertex alongside the *resilience.Stopped error
	// (nil: never stops).
	Control *resilience.RunController
}

func (o *NMOptions) defaults(dim int) NMOptions {
	out := NMOptions{MaxEvals: 2000 * dim, Tol: 1e-10, Scale: 0.1}
	if o != nil {
		if o.MaxEvals > 0 {
			out.MaxEvals = o.MaxEvals
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.Scale > 0 {
			out.Scale = o.Scale
		}
		out.Observer, out.Scope, out.Control = o.Observer, o.Scope, o.Control
	}
	return out
}

// NelderMead minimizes f starting from x0 with the downhill-simplex method
// (adaptive parameters after Gao & Han).
func NelderMead(f Objective, x0 []float64, opts *NMOptions) (Result, error) {
	return profRun("nm", func(context.Context) (Result, error) {
		return nelderMead(f, x0, opts)
	})
}

func nelderMead(f Objective, x0 []float64, opts *NMOptions) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, ErrBadInput
	}
	o := opts.defaults(n)
	em := newEmitter(o.Observer, o.Scope, scopeNM)
	c := &counter{f: f, ctrl: o.Control}

	// Adaptive coefficients improve high-dimensional behaviour.
	nf := float64(n)
	alpha, beta, gamma, delta := 1.0, 1+2/nf, 0.75-1/(2*nf), 1-1/nf

	// Build initial simplex.
	simplex := make([][]float64, n+1)
	fv := make([]float64, n+1)
	for i := range simplex {
		p := append([]float64(nil), x0...)
		if i > 0 {
			step := o.Scale * (1 + math.Abs(p[i-1]))
			p[i-1] += step
		}
		simplex[i] = p
		fv[i] = c.eval(p)
	}

	// Sorting and trial-point scratch is hoisted out of the loop: the polish
	// stages run tens of thousands of simplex iterations, and per-iteration
	// slices were the dominant allocation churn of the local searches.
	idx := make([]int, n+1)
	ns := make([][]float64, n+1)
	nv := make([]float64, n+1)
	order := func() {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return fv[idx[a]] < fv[idx[b]] })
		for i, j := range idx {
			ns[i], nv[i] = simplex[j], fv[j]
		}
		copy(simplex, ns)
		copy(fv, nv)
	}

	centroid := make([]float64, n)
	pointInto := func(p, base []float64, coef float64, away []float64) {
		for i := range p {
			p[i] = base[i] + coef*(base[i]-away[i])
		}
	}
	// Two recycled trial buffers; when a trial is accepted it is swapped
	// into the simplex and the displaced worst vertex becomes the new spare,
	// so accepted points are retained without copying or allocating.
	xr := make([]float64, n)
	xt := make([]float64, n)
	accept := func(buf []float64, f float64) []float64 {
		old := simplex[n]
		simplex[n], fv[n] = buf, f
		return old
	}

	for c.n < o.MaxEvals {
		order()
		if err := o.Control.Check(); err != nil {
			em.done(c.n, fv[0])
			return Result{X: simplex[0], F: fv[0], Evals: c.n, Converged: false}, err
		}
		// Convergence: simplex function spread.
		if math.Abs(fv[n]-fv[0]) <= o.Tol*(1+math.Abs(fv[0])) {
			em.done(c.n, fv[0])
			return Result{X: simplex[0], F: fv[0], Evals: c.n, Converged: true}, nil
		}
		for i := range centroid {
			centroid[i] = 0
			for j := 0; j < n; j++ {
				centroid[i] += simplex[j][i]
			}
			centroid[i] /= nf
		}
		pointInto(xr, centroid, alpha, simplex[n])
		fr := c.eval(xr)
		switch {
		case fr < fv[0]:
			// Try expansion.
			pointInto(xt, centroid, alpha*beta, simplex[n])
			if fe := c.eval(xt); fe < fr {
				xt = accept(xt, fe)
			} else {
				xr = accept(xr, fr)
			}
		case fr < fv[n-1]:
			xr = accept(xr, fr)
		default:
			// Contraction.
			if fr < fv[n] {
				pointInto(xt, centroid, alpha*gamma, simplex[n])
			} else {
				pointInto(xt, centroid, -gamma, simplex[n])
			}
			if fc := c.eval(xt); fc < math.Min(fr, fv[n]) {
				xt = accept(xt, fc)
			} else {
				// Shrink toward the best vertex.
				for j := 1; j <= n; j++ {
					for i := range simplex[j] {
						simplex[j][i] = simplex[0][i] + delta*(simplex[j][i]-simplex[0][i])
					}
					fv[j] = c.eval(simplex[j])
				}
			}
		}
	}
	order()
	em.done(c.n, fv[0])
	return Result{X: simplex[0], F: fv[0], Evals: c.n, Converged: false}, nil
}

// HJOptions configures Hooke-Jeeves pattern search.
type HJOptions struct {
	// MaxEvals caps objective evaluations (default 4000 * dim).
	MaxEvals int
	// Step is the initial exploratory step (default 0.25).
	Step float64
	// Tol is the terminal step size (default 1e-9).
	Tol float64
	// Control is polled once per exploratory/pattern move; on a stop the
	// search returns its best base point alongside the *resilience.Stopped
	// error (nil: never stops).
	Control *resilience.RunController
}

// HookeJeeves minimizes f from x0 by pattern search, a derivative-free
// method robust to the mild noise of simulated measurements.
func HookeJeeves(f Objective, x0 []float64, opts *HJOptions) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, ErrBadInput
	}
	maxEvals := 4000 * n
	step, tol := 0.25, 1e-9
	var ctrl *resilience.RunController
	if opts != nil {
		if opts.MaxEvals > 0 {
			maxEvals = opts.MaxEvals
		}
		if opts.Step > 0 {
			step = opts.Step
		}
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		ctrl = opts.Control
	}
	c := &counter{f: f, ctrl: ctrl}
	base := append([]float64(nil), x0...)
	fb := c.eval(base)

	explore := func(from []float64, ffrom float64) ([]float64, float64) {
		x := append([]float64(nil), from...)
		fx := ffrom
		for i := 0; i < n; i++ {
			h := step * (1 + math.Abs(x[i]))
			x[i] += h
			if fp := c.eval(x); fp < fx {
				fx = fp
				continue
			}
			x[i] -= 2 * h
			if fm := c.eval(x); fm < fx {
				fx = fm
				continue
			}
			x[i] += h
		}
		return x, fx
	}

	for c.n < maxEvals && step > tol {
		if err := ctrl.Check(); err != nil {
			return Result{X: base, F: fb, Evals: c.n, Converged: false}, err
		}
		xNew, fNew := explore(base, fb)
		if fNew < fb {
			// Pattern move: keep going in the improving direction.
			for c.n < maxEvals {
				if err := ctrl.Check(); err != nil {
					return Result{X: xNew, F: fNew, Evals: c.n, Converged: false}, err
				}
				pattern := make([]float64, n)
				for i := range pattern {
					pattern[i] = 2*xNew[i] - base[i]
				}
				fp := c.eval(pattern)
				xp, fxp := explore(pattern, fp)
				base, fb = xNew, fNew
				if fxp >= fNew {
					break
				}
				xNew, fNew = xp, fxp
			}
			base, fb = xNew, fNew
		} else {
			step /= 2
		}
	}
	return Result{X: base, F: fb, Evals: c.n, Converged: step <= tol}, nil
}

// GoldenSection minimizes a one-dimensional function on [a, b] to the given
// x tolerance.
func GoldenSection(f func(float64) float64, a, b, tol float64) (x, fx float64, evals int) {
	if a > b {
		a, b = b, a
	}
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	evals = 2
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
		evals++
	}
	if f1 < f2 {
		return x1, f1, evals
	}
	return x2, f2, evals
}
