package optim

import (
	"math"
	"testing"
)

func TestDifferentialEvolutionRastrigin(t *testing.T) {
	// DE must escape Rastrigin's local minima in 4-D.
	lo := []float64{-5.12, -5.12, -5.12, -5.12}
	hi := []float64{5.12, 5.12, 5.12, 5.12}
	res, err := DifferentialEvolution(rastrigin, lo, hi, &DEOptions{
		Generations: 400, Seed: 3,
	})
	if err != nil {
		t.Fatalf("DE: %v", err)
	}
	if res.F > 1e-3 {
		t.Errorf("DE on Rastrigin: F = %g, want ~0 (x=%v)", res.F, res.X)
	}
}

func TestDifferentialEvolutionRespectsBounds(t *testing.T) {
	lo := []float64{1, -2}
	hi := []float64{2, -1}
	res, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{Generations: 50, Seed: 2})
	if err != nil {
		t.Fatalf("DE: %v", err)
	}
	for i := range res.X {
		if res.X[i] < lo[i]-1e-12 || res.X[i] > hi[i]+1e-12 {
			t.Errorf("x[%d] = %g outside [%g, %g]", i, res.X[i], lo[i], hi[i])
		}
	}
	// Optimum of sphere on this box is the corner (1, -1).
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Errorf("constrained optimum = %v, want [1 -1]", res.X)
	}
}

func TestDifferentialEvolutionEarlyStop(t *testing.T) {
	res, err := DifferentialEvolution(sphere, []float64{-1, -1}, []float64{1, 1},
		&DEOptions{Generations: 10000, Tol: 1e-14, Seed: 5})
	if err != nil {
		t.Fatalf("DE: %v", err)
	}
	if !res.Converged {
		t.Error("expected early convergence on sphere")
	}
	if res.Evals >= 10000*30 {
		t.Errorf("early stop did not trigger: %d evals", res.Evals)
	}
}

func TestDEBadInput(t *testing.T) {
	if _, err := DifferentialEvolution(sphere, nil, nil, nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := DifferentialEvolution(sphere, []float64{1}, []float64{0}, nil); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestParticleSwarmSphere(t *testing.T) {
	lo := []float64{-5, -5, -5}
	hi := []float64{5, 5, 5}
	res, err := ParticleSwarm(sphere, lo, hi, &PSOOptions{Iterations: 200, Seed: 4})
	if err != nil {
		t.Fatalf("PSO: %v", err)
	}
	if res.F > 1e-6 {
		t.Errorf("PSO on sphere: F = %g, want ~0", res.F)
	}
	if _, err := ParticleSwarm(sphere, nil, nil, nil); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestSimulatedAnnealingMultimodal(t *testing.T) {
	// 1-D multimodal with global optimum at x ~ 0.
	f := func(x []float64) float64 {
		return x[0]*x[0] + 3*math.Sin(5*x[0])*math.Sin(5*x[0])
	}
	res, err := SimulatedAnnealing(f, []float64{-4}, []float64{4},
		&SAOptions{Iterations: 50000, Seed: 9})
	if err != nil {
		t.Fatalf("SA: %v", err)
	}
	if res.F > 0.05 {
		t.Errorf("SA stuck at F = %g (x = %v)", res.F, res.X)
	}
	if _, err := SimulatedAnnealing(f, nil, nil, nil); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestMetaheuristicsDeterministic(t *testing.T) {
	lo := []float64{-3, -3}
	hi := []float64{3, 3}
	r1, err := DifferentialEvolution(rosenbrock, lo, hi, &DEOptions{Generations: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DifferentialEvolution(rosenbrock, lo, hi, &DEOptions{Generations: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.F != r2.F {
		t.Errorf("same seed, different results: %g vs %g", r1.F, r2.F)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Errorf("same seed, different x[%d]", i)
		}
	}
}

// TestOptimizerShootout cross-checks every global optimizer on the same
// multimodal problem with a fixed budget: all must land within a modest
// factor of the best, which guards against silent regressions in any one of
// them.
func TestOptimizerShootout(t *testing.T) {
	lo := []float64{-5.12, -5.12}
	hi := []float64{5.12, 5.12}
	results := map[string]float64{}
	if r, err := DifferentialEvolution(rastrigin, lo, hi, &DEOptions{Generations: 150, Seed: 9}); err == nil {
		results["DE"] = r.F
	} else {
		t.Fatal(err)
	}
	if r, err := ParticleSwarm(rastrigin, lo, hi, &PSOOptions{Iterations: 150, Seed: 9}); err == nil {
		results["PSO"] = r.F
	} else {
		t.Fatal(err)
	}
	if r, err := SimulatedAnnealing(rastrigin, lo, hi, &SAOptions{Iterations: 40000, Seed: 9}); err == nil {
		results["SA"] = r.F
	} else {
		t.Fatal(err)
	}
	if r, err := CMAES(rastrigin, lo, hi, &CMAESOptions{Generations: 200, Seed: 9, Lambda: 16}); err == nil {
		results["CMA-ES"] = r.F
	} else {
		t.Fatal(err)
	}
	for name, f := range results {
		if f > 2.5 {
			t.Errorf("%s stuck at F = %g on 2-D Rastrigin", name, f)
		}
	}
}
