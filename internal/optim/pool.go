package optim

import (
	"sync"
	"sync/atomic"
)

// EvalPool fans a batch of independent candidate evaluations across a fixed
// number of worker goroutines and writes each result back by index, so a
// generational solver can evaluate its population concurrently without
// disturbing the serial algorithm: all randomness stays on the driver
// goroutine, workers only call the objective, and the driver consumes the
// results in the same index order it would have produced them serially. The
// trajectory (RNG stream, selection order, best-so-far) is therefore
// bit-identical for any worker count.
//
// Workers <= 1 (including a nil pool) evaluates on the calling goroutine,
// byte-for-byte today's serial behavior with zero goroutine overhead.
//
// Objectives handed to a pool with Workers > 1 must be safe for concurrent
// calls. resilience.Safe / resilience.SafeVector wrappers qualify: their
// fault gate is built on atomics, so panic quarantine, NaN/Inf penalties and
// circuit-breaker counts merge race-free across workers. A panic that
// escapes the objective itself is captured, the remaining evaluations of the
// batch finish, and the panic is re-raised on the driver goroutine — the
// pool never deadlocks and never loses a batch.
type EvalPool struct {
	workers int
}

// NewEvalPool returns a pool that runs batches on up to workers goroutines.
// Values <= 1 yield a serial pool.
func NewEvalPool(workers int) *EvalPool {
	if workers < 1 {
		workers = 1
	}
	return &EvalPool{workers: workers}
}

// Workers reports the pool's worker count (1 for a nil or serial pool).
func (p *EvalPool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Each runs fn(i) for every i in [0, n), fanning the calls across the pool's
// workers. Indices are claimed from an atomic cursor, so each is evaluated
// exactly once; fn must write its result into caller-owned storage at slot i.
// The first panic raised by fn is re-thrown on the calling goroutine after
// all workers have drained.
func (p *EvalPool) Each(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
		sawPanic bool
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !sawPanic {
								sawPanic = true
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if sawPanic {
		panic(panicked)
	}
}

// Map evaluates f at every xs[i] and stores f(xs[i]) in out[i]. The xs rows
// must not alias each other when Workers > 1.
func (p *EvalPool) Map(f Objective, xs [][]float64, out []float64) {
	p.Each(len(xs), func(i int) { out[i] = f(xs[i]) })
}

// MapVector evaluates the vector objective at every xs[i] and stores the
// returned slice in out[i].
func (p *EvalPool) MapVector(f VectorObjective, xs [][]float64, out [][]float64) {
	p.Each(len(xs), func(i int) { out[i] = f(xs[i]) })
}

// evalBatch evaluates the batch through the pool while keeping every piece
// of counter bookkeeping on the driver goroutine: workers only call the raw
// objective, and the eval tally (local count plus controller budget) is
// charged exactly once per candidate before the batch runs — the same total,
// in the same generation, as the serial loop. With a serial pool it is
// exactly the historical eval-per-candidate loop.
func (c *counter) evalBatch(p *EvalPool, xs [][]float64, out []float64) {
	if p.Workers() <= 1 {
		for i := range xs {
			out[i] = c.eval(xs[i])
		}
		return
	}
	c.n += len(xs)
	c.ctrl.AddEvals(len(xs))
	p.Map(c.f, xs, out)
}
