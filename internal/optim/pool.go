package optim

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"gnsslna/internal/obs"
)

// EvalPool fans a batch of independent candidate evaluations across a fixed
// number of worker goroutines and writes each result back by index, so a
// generational solver can evaluate its population concurrently without
// disturbing the serial algorithm: all randomness stays on the driver
// goroutine, workers only call the objective, and the driver consumes the
// results in the same index order it would have produced them serially. The
// trajectory (RNG stream, selection order, best-so-far) is therefore
// bit-identical for any worker count.
//
// Workers <= 1 (including a nil pool) evaluates on the calling goroutine,
// byte-for-byte today's serial behavior with zero goroutine overhead.
//
// Objectives handed to a pool with Workers > 1 must be safe for concurrent
// calls. resilience.Safe / resilience.SafeVector wrappers qualify: their
// fault gate is built on atomics, so panic quarantine, NaN/Inf penalties and
// circuit-breaker counts merge race-free across workers. A panic that
// escapes the objective itself is captured, the remaining evaluations of the
// batch finish, and the panic is re-raised on the driver goroutine — the
// pool never deadlocks and never loses a batch.
//
// When a batch runs under a traced emitter the pool additionally attributes
// the work: each worker is labeled for pprof (worker=N, composed with the
// solver's phase/solver labels), emits one worker-attributed child span per
// batch, and feeds per-candidate latencies to the trace's outlier detector,
// which flags evaluations far beyond the scope's p99 with the offending
// candidate index. None of that path is entered for untraced batches.
type EvalPool struct {
	workers int
}

// batchTrace carries the per-batch trace context a traced emitter hands the
// pool: where to emit worker spans, which generation span to parent them
// under, and the labeled ctx pprof worker labels derive from.
type batchTrace struct {
	ctx    context.Context
	tr     *obs.Traced
	parent obs.SpanID
	scope  string
	det    *obs.OutlierDetector
}

// observeEval feeds one candidate's latency to the outlier detector and
// journals a flagged sample (scope "<scope>.outlier", Gen = candidate
// index) when it lands beyond the detector's p99 gate.
func (bt *batchTrace) observeEval(i int, ms float64) {
	if bt.det != nil && bt.det.Observe(bt.scope, ms) {
		bt.tr.Observe(obs.Event{
			Kind:  obs.KindSample,
			Scope: bt.scope + ".outlier",
			Gen:   i,
			Value: ms,
		})
	}
}

// endWorker closes one worker's share of a batch as a span-end record:
// Worker carries the 1-based worker ordinal, Evals the candidates it
// claimed, Value its busy wall time. The span is allocated at close (worker
// spans are leaves; replay reconstructs the begin from t_ms - wall_ms).
func (bt *batchTrace) endWorker(g, count int, start time.Time) {
	if count == 0 {
		return
	}
	bt.tr.Observe(obs.Event{
		Kind:   obs.KindSpanEnd,
		Scope:  bt.scope + ".worker",
		Evals:  int64(count),
		Value:  float64(time.Since(start)) / float64(time.Millisecond),
		Span:   bt.tr.Tracer().NewSpan(),
		Parent: bt.parent,
		Worker: g + 1,
	})
}

// NewEvalPool returns a pool that runs batches on up to workers goroutines.
// Values <= 1 yield a serial pool.
func NewEvalPool(workers int) *EvalPool {
	if workers < 1 {
		workers = 1
	}
	return &EvalPool{workers: workers}
}

// Workers reports the pool's worker count (1 for a nil or serial pool).
func (p *EvalPool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Each runs fn(i) for every i in [0, n), fanning the calls across the pool's
// workers. Indices are claimed from an atomic cursor, so each is evaluated
// exactly once; fn must write its result into caller-owned storage at slot i.
// The first panic raised by fn is re-thrown on the calling goroutine after
// all workers have drained.
func (p *EvalPool) Each(n int, fn func(i int)) {
	p.each(n, fn, nil)
}

// each is Each plus optional per-batch trace attribution.
func (p *EvalPool) each(n int, fn func(i int), bt *batchTrace) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if bt == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		for i := 0; i < n; i++ {
			t0 := time.Now()
			fn(i)
			bt.observeEval(i, float64(time.Since(t0))/float64(time.Millisecond))
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
		sawPanic bool
	)
	claim := func(g int) {
		var start time.Time
		count := 0
		if bt != nil {
			start = time.Now()
		}
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				break
			}
			var t0 time.Time
			if bt != nil {
				t0 = time.Now()
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if !sawPanic {
							sawPanic = true
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
			if bt != nil {
				bt.observeEval(i, float64(time.Since(t0))/float64(time.Millisecond))
			}
			count++
		}
		if bt != nil {
			bt.endWorker(g, count, start)
		}
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if bt == nil {
				// Untraced workers still inherit the spawning goroutine's
				// pprof labels (phase/solver) automatically.
				claim(g)
				return
			}
			pprof.Do(obs.WorkerCtx(bt.ctx, g), pprof.Labels(), func(context.Context) {
				claim(g)
			})
		}(g)
	}
	wg.Wait()
	if sawPanic {
		panic(panicked)
	}
}

// Map evaluates f at every xs[i] and stores f(xs[i]) in out[i]. The xs rows
// must not alias each other when Workers > 1.
func (p *EvalPool) Map(f Objective, xs [][]float64, out []float64) {
	p.Each(len(xs), func(i int) { out[i] = f(xs[i]) })
}

// MapVector evaluates the vector objective at every xs[i] and stores the
// returned slice in out[i].
func (p *EvalPool) MapVector(f VectorObjective, xs [][]float64, out [][]float64) {
	p.Each(len(xs), func(i int) { out[i] = f(xs[i]) })
}

// mapVector is MapVector plus optional trace attribution (bt may be nil).
func (p *EvalPool) mapVector(f VectorObjective, xs [][]float64, out [][]float64, bt *batchTrace) {
	p.each(len(xs), func(i int) { out[i] = f(xs[i]) }, bt)
}

// evalBatch evaluates the batch through the pool while keeping every piece
// of counter bookkeeping on the driver goroutine: workers only call the raw
// objective, and the eval tally (local count plus controller budget) is
// charged exactly once per candidate before the batch runs — the same total,
// in the same generation, as the serial loop. With a serial pool it is
// exactly the historical eval-per-candidate loop.
func (c *counter) evalBatch(p *EvalPool, xs [][]float64, out []float64) {
	var bt *batchTrace
	if c.em != nil {
		bt = c.em.batch()
	}
	if p.Workers() <= 1 {
		if bt == nil {
			for i := range xs {
				out[i] = c.eval(xs[i])
			}
			return
		}
		for i := range xs {
			t0 := time.Now()
			out[i] = c.eval(xs[i])
			bt.observeEval(i, float64(time.Since(t0))/float64(time.Millisecond))
		}
		return
	}
	c.n += len(xs)
	c.ctrl.AddEvals(len(xs))
	p.each(len(xs), func(i int) { out[i] = c.f(xs[i]) }, bt)
}
