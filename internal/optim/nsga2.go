package optim

import (
	"context"
	"math"
	"sort"

	"gnsslna/internal/obs"
	"gnsslna/internal/resilience"
)

// NSGA2Options configures the NSGA-II baseline.
type NSGA2Options struct {
	// Pop is the population size (default 80, forced even).
	Pop int
	// Generations is the number of generations (default 100).
	Generations int
	// Seed seeds the deterministic RNG (default 1).
	Seed int64
	// CrossoverEta and MutationEta are the SBX / polynomial-mutation
	// distribution indices (defaults 15 and 20).
	CrossoverEta, MutationEta float64
	// MutationProb is the per-gene mutation probability (default 1/dim).
	MutationProb float64
	// Workers bounds the goroutines used to evaluate each generation's
	// offspring batch (<= 1: serial). Variation draws stay on the driver
	// goroutine and offspring are evaluated as one batch written back by
	// index, so the run is bit-identical for any worker count; obj must be
	// safe for concurrent calls when Workers > 1.
	Workers int
	// Observer receives per-generation convergence events; Best carries
	// the minimum of the first objective over the current parents, a cheap
	// scalar proxy for front progress (nil: disabled).
	Observer obs.Observer
	// Scope labels emitted events (default "optim.nsga2").
	Scope string
	// Control is polled once per generation; on a stop the run returns the
	// current non-dominated front alongside the *resilience.Stopped error
	// (nil: never stops).
	Control *resilience.RunController
}

// NSGA2Result reports a run: the final non-dominated set.
type NSGA2Result struct {
	// X holds the Pareto-set design vectors.
	X [][]float64
	// F holds the corresponding objective vectors.
	F [][]float64
	// Evals counts vector-objective evaluations.
	Evals int
}

type nsgaInd struct {
	x, f  []float64
	rank  int
	crowd float64
}

// NSGA2 runs the elitist non-dominated sorting genetic algorithm, the
// population-based baseline for the Pareto-front comparison experiment.
func NSGA2(obj VectorObjective, lo, hi []float64, opts *NSGA2Options) (NSGA2Result, error) {
	var res NSGA2Result
	var err error
	obs.ProfDo("optim", "nsga2", func(ctx context.Context) {
		res, err = nsga2(ctx, obj, lo, hi, opts)
	})
	return res, err
}

func nsga2(ctx context.Context, obj VectorObjective, lo, hi []float64, opts *NSGA2Options) (NSGA2Result, error) {
	n := len(lo)
	if obj == nil || n == 0 || len(hi) != n {
		return NSGA2Result{}, ErrBadInput
	}
	pop, gens, seed, workers := 80, 100, int64(1), 1
	etaC, etaM := 15.0, 20.0
	pm := 1.0 / float64(n)
	var observer obs.Observer
	var ctrl *resilience.RunController
	scope := ""
	if opts != nil {
		observer, scope = opts.Observer, opts.Scope
		ctrl = opts.Control
		workers = opts.Workers
		if opts.Pop > 3 {
			pop = opts.Pop
		}
		if opts.Generations > 0 {
			gens = opts.Generations
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		if opts.CrossoverEta > 0 {
			etaC = opts.CrossoverEta
		}
		if opts.MutationEta > 0 {
			etaM = opts.MutationEta
		}
		if opts.MutationProb > 0 {
			pm = opts.MutationProb
		}
	}
	if pop%2 == 1 {
		pop++
	}
	em := newEmitter(observer, scope, scopeNSGA2)
	em.ctx = ctx
	rng := newRand(seed)
	pl := NewEvalPool(workers)
	evals := 0
	// evalBatch charges the eval tally on the driver once per candidate and
	// fans the objective calls across the pool, writing back by index.
	evalBatch := func(xs [][]float64, out [][]float64) {
		evals += len(xs)
		ctrl.AddEvals(len(xs))
		pl.mapVector(obj, xs, out, em.batch())
	}

	parents := make([]nsgaInd, pop)
	batchX := make([][]float64, 0, pop)
	batchF := make([][]float64, pop)
	for i := range parents {
		x := make([]float64, n)
		for j := range x {
			x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		parents[i] = nsgaInd{x: x}
		batchX = append(batchX, x)
	}
	evalBatch(batchX, batchF)
	for i := range parents {
		parents[i].f = batchF[i]
	}
	rankAndCrowd(parents)

	for g := 0; g < gens; g++ {
		if err := ctrl.Check(); err != nil {
			em.done(evals, minFirstObjective(parents))
			return frontOf(parents, evals), err
		}
		em.beginGen()
		// Variation first (all RNG draws, in index order), then one batch
		// evaluation of the offspring.
		batchX = batchX[:0]
		for len(batchX) < pop {
			p1 := tournament(parents, rng)
			p2 := tournament(parents, rng)
			c1, c2 := sbx(p1.x, p2.x, lo, hi, etaC, rng)
			mutate(c1, lo, hi, etaM, pm, rng)
			mutate(c2, lo, hi, etaM, pm, rng)
			batchX = append(batchX, c1, c2)
		}
		evalBatch(batchX, batchF)
		children := make([]nsgaInd, pop)
		for i := range children {
			children[i] = nsgaInd{x: batchX[i], f: batchF[i]}
		}
		union := append(parents, children...)
		rankAndCrowd(union)
		sort.Slice(union, func(a, b int) bool {
			if union[a].rank != union[b].rank {
				return union[a].rank < union[b].rank
			}
			return union[a].crowd > union[b].crowd
		})
		parents = append([]nsgaInd(nil), union[:pop]...)
		em.gen(g, evals, minFirstObjective(parents))
	}
	em.done(evals, minFirstObjective(parents))
	return frontOf(parents, evals), nil
}

// frontOf extracts the rank-0 set of a ranked population into a result.
func frontOf(parents []nsgaInd, evals int) NSGA2Result {
	res := NSGA2Result{Evals: evals}
	for _, ind := range parents {
		if ind.rank == 0 {
			res.X = append(res.X, ind.x)
			res.F = append(res.F, ind.f)
		}
	}
	return res
}

// minFirstObjective is the scalar convergence proxy reported for NSGA-II.
func minFirstObjective(pop []nsgaInd) float64 {
	best := math.Inf(1)
	for _, ind := range pop {
		if len(ind.f) > 0 && ind.f[0] < best {
			best = ind.f[0]
		}
	}
	return best
}

// tournament picks the better of two random individuals (rank, then crowd).
func tournament(pop []nsgaInd, rng interface{ Intn(int) int }) nsgaInd {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.rank < b.rank || (a.rank == b.rank && a.crowd > b.crowd) {
		return a
	}
	return b
}

// rankAndCrowd assigns non-domination ranks and crowding distances in place.
func rankAndCrowd(pop []nsgaInd) {
	nPop := len(pop)
	dominatedBy := make([][]int, nPop)
	domCount := make([]int, nPop)
	var first []int
	for i := 0; i < nPop; i++ {
		for j := 0; j < nPop; j++ {
			if i == j {
				continue
			}
			if Dominates(pop[i].f, pop[j].f) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if Dominates(pop[j].f, pop[i].f) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			first = append(first, i)
		}
	}
	front := first
	rank := 0
	for len(front) > 0 {
		var next []int
		for _, i := range front {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		crowding(pop, front)
		front = next
		rank++
	}
}

// crowding computes crowding distance for the individuals indexed by front.
func crowding(pop []nsgaInd, front []int) {
	if len(front) == 0 {
		return
	}
	m := len(pop[front[0]].f)
	for _, i := range front {
		pop[i].crowd = 0
	}
	idx := append([]int(nil), front...)
	for k := 0; k < m; k++ {
		sort.Slice(idx, func(a, b int) bool { return pop[idx[a]].f[k] < pop[idx[b]].f[k] })
		lo, hi := pop[idx[0]].f[k], pop[idx[len(idx)-1]].f[k]
		pop[idx[0]].crowd = math.Inf(1)
		pop[idx[len(idx)-1]].crowd = math.Inf(1)
		if hi == lo {
			continue
		}
		for t := 1; t < len(idx)-1; t++ {
			pop[idx[t]].crowd += (pop[idx[t+1]].f[k] - pop[idx[t-1]].f[k]) / (hi - lo)
		}
	}
}

// sbx performs simulated binary crossover.
func sbx(p1, p2, lo, hi []float64, eta float64, rng interface{ Float64() float64 }) (c1, c2 []float64) {
	n := len(p1)
	c1 = make([]float64, n)
	c2 = make([]float64, n)
	for j := 0; j < n; j++ {
		if rng.Float64() < 0.9 {
			u := rng.Float64()
			var beta float64
			if u <= 0.5 {
				beta = math.Pow(2*u, 1/(eta+1))
			} else {
				beta = math.Pow(1/(2*(1-u)), 1/(eta+1))
			}
			c1[j] = 0.5 * ((1+beta)*p1[j] + (1-beta)*p2[j])
			c2[j] = 0.5 * ((1-beta)*p1[j] + (1+beta)*p2[j])
		} else {
			c1[j], c2[j] = p1[j], p2[j]
		}
		c1[j] = math.Min(math.Max(c1[j], lo[j]), hi[j])
		c2[j] = math.Min(math.Max(c2[j], lo[j]), hi[j])
	}
	return c1, c2
}

// mutate applies polynomial mutation in place.
func mutate(x, lo, hi []float64, eta, prob float64, rng interface{ Float64() float64 }) {
	for j := range x {
		if rng.Float64() >= prob {
			continue
		}
		u := rng.Float64()
		span := hi[j] - lo[j]
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(eta+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(eta+1))
		}
		x[j] = math.Min(math.Max(x[j]+delta*span, lo[j]), hi[j])
	}
}
