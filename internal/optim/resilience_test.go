package optim

import (
	"context"
	"math"
	"testing"
	"time"

	"gnsslna/internal/resilience"
)

func sphereVec(x []float64) []float64 {
	return []float64{sphere(x), sphere(x) + 1}
}

var sphereGoals = []Goal{
	{Name: "a", Target: 0, Weight: 1},
	{Name: "b", Target: 0, Weight: 1},
}

// stopCase runs one solver under the given controller and returns its
// best-so-far point and error.
type stopCase struct {
	name string
	run  func(ctrl *resilience.RunController) ([]float64, error)
}

func stopCases() []stopCase {
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	x0 := []float64{1.5, -1, 0.5}
	return []stopCase{
		{"de", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{Pop: 20, Generations: 50, Control: ctrl})
			return r.X, err
		}},
		{"pso", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := ParticleSwarm(sphere, lo, hi, &PSOOptions{Pop: 20, Iterations: 50, Control: ctrl})
			return r.X, err
		}},
		{"sa", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := SimulatedAnnealing(sphere, lo, hi, &SAOptions{Iterations: 500, Control: ctrl})
			return r.X, err
		}},
		{"cmaes", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := CMAES(sphere, lo, hi, &CMAESOptions{Generations: 50, Control: ctrl})
			return r.X, err
		}},
		{"nm", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := NelderMead(sphere, x0, &NMOptions{MaxEvals: 2000, Control: ctrl})
			return r.X, err
		}},
		{"hj", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := HookeJeeves(sphere, x0, &HJOptions{MaxEvals: 2000, Control: ctrl})
			return r.X, err
		}},
		{"lm", func(ctrl *resilience.RunController) ([]float64, error) {
			// Rosenbrock residuals: slow enough that the fit cannot
			// converge before the tiny budgets used here run out.
			rosen := func(x []float64) []float64 {
				return []float64{
					10 * (x[1] - x[0]*x[0]), 1 - x[0],
					10 * (x[2] - x[1]*x[1]), 1 - x[1],
				}
			}
			r, err := LevenbergMarquardt(rosen, []float64{-1.2, 1, 1.5}, &LMOptions{MaxIter: 500, Control: ctrl})
			return r.X, err
		}},
		{"nsga2", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := NSGA2(sphereVec, lo, hi, &NSGA2Options{Pop: 20, Generations: 50, Control: ctrl})
			if len(r.X) == 0 {
				return nil, err
			}
			return r.X[0], err
		}},
		{"attain-standard", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := GoalAttainStandard(sphereVec, sphereGoals, lo, hi, &AttainOptions{GlobalEvals: 1000, PolishEvals: 400, Control: ctrl})
			return r.X, err
		}},
		{"attain-improved", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := GoalAttainImproved(sphereVec, sphereGoals, lo, hi, &AttainOptions{GlobalEvals: 1000, PolishEvals: 400, Control: ctrl})
			return r.X, err
		}},
		{"weighted-sum", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := WeightedSum(sphereVec, []float64{1, 1}, lo, hi, &AttainOptions{GlobalEvals: 1000, PolishEvals: 400, Control: ctrl})
			return r.X, err
		}},
		{"eps-constraint", func(ctrl *resilience.RunController) ([]float64, error) {
			r, err := EpsilonConstraint(sphereVec, 0, []float64{0, 10}, lo, hi, &AttainOptions{GlobalEvals: 1000, PolishEvals: 400, Control: ctrl})
			return r.X, err
		}},
	}
}

func TestSolversStopOnEvalBudget(t *testing.T) {
	for _, tc := range stopCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := resilience.NewController(resilience.ControllerOptions{MaxEvals: 25})
			x, err := tc.run(ctrl)
			st, ok := resilience.AsStopped(err)
			if !ok {
				t.Fatalf("want Stopped error, got %v", err)
			}
			if st.Reason != resilience.StopBudget {
				t.Fatalf("reason = %v, want eval-budget", st.Reason)
			}
			if len(x) == 0 {
				t.Fatal("no best-so-far point returned")
			}
			for _, v := range x {
				if math.IsNaN(v) {
					t.Fatalf("best-so-far contains NaN: %v", x)
				}
			}
		})
	}
}

func TestSolversStopOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range stopCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := resilience.NewController(resilience.ControllerOptions{Context: ctx})
			x, err := tc.run(ctrl)
			st, ok := resilience.AsStopped(err)
			if !ok {
				t.Fatalf("want Stopped error, got %v", err)
			}
			if st.Reason != resilience.StopCanceled {
				t.Fatalf("reason = %v, want canceled", st.Reason)
			}
			if len(x) == 0 {
				t.Fatal("no best-so-far point returned")
			}
		})
	}
}

func TestSolversStopOnDeadline(t *testing.T) {
	// A fake clock already past the deadline stops every solver at its
	// first poll, without real waiting.
	now := time.Unix(2000, 0)
	for _, tc := range stopCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := resilience.NewController(resilience.ControllerOptions{
				Deadline: now.Add(-time.Second),
				Clock:    func() time.Time { return now },
			})
			x, err := tc.run(ctrl)
			st, ok := resilience.AsStopped(err)
			if !ok {
				t.Fatalf("want Stopped error, got %v", err)
			}
			if st.Reason != resilience.StopDeadline {
				t.Fatalf("reason = %v, want deadline", st.Reason)
			}
			if len(x) == 0 {
				t.Fatal("no best-so-far point returned")
			}
		})
	}
}

func TestNilControllerUnchangedBehaviour(t *testing.T) {
	// Solvers without a controller must behave exactly as before the
	// resilience layer: same deterministic result, no error.
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	a, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{Pop: 20, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{Pop: 20, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.F != b.F || a.Evals != b.Evals {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func sameResult(t *testing.T, name string, a, b Result) {
	t.Helper()
	if math.Float64bits(a.F) != math.Float64bits(b.F) {
		t.Fatalf("%s: F %v != %v", name, a.F, b.F)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: dim %d != %d", name, len(a.X), len(b.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("%s: X[%d] %v != %v", name, i, a.X[i], b.X[i])
		}
	}
	if a.Evals != b.Evals {
		t.Fatalf("%s: evals %d != %d", name, a.Evals, b.Evals)
	}
}

func TestDEResumeBitIdentical(t *testing.T) {
	lo := []float64{-3, -3, -3}
	hi := []float64{3, 3, 3}
	opts := DEOptions{Pop: 20, Generations: 40, Seed: 5}

	full, err := DifferentialEvolution(sphere, lo, hi, &opts)
	if err != nil {
		t.Fatal(err)
	}

	// Capture the mid-run state, as a checkpointing caller would.
	var mid *DEState
	withCkpt := opts
	withCkpt.Checkpoint = func(s DEState) {
		if s.Gen == 20 {
			mid = &s
		}
	}
	if _, err := DifferentialEvolution(sphere, lo, hi, &withCkpt); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no generation-20 checkpoint captured")
	}

	resumed := opts
	resumed.Resume = mid
	got, err := DifferentialEvolution(sphere, lo, hi, &resumed)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "de", full, got)
}

func TestPSOResumeBitIdentical(t *testing.T) {
	lo := []float64{-3, -3}
	hi := []float64{3, 3}
	opts := PSOOptions{Pop: 20, Iterations: 40, Seed: 5}

	full, err := ParticleSwarm(sphere, lo, hi, &opts)
	if err != nil {
		t.Fatal(err)
	}
	var mid *PSOState
	withCkpt := opts
	withCkpt.Checkpoint = func(s PSOState) {
		if s.It == 20 {
			mid = &s
		}
	}
	if _, err := ParticleSwarm(sphere, lo, hi, &withCkpt); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no iteration-20 checkpoint captured")
	}
	resumed := opts
	resumed.Resume = mid
	got, err := ParticleSwarm(sphere, lo, hi, &resumed)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pso", full, got)
}

func TestSAResumeBitIdentical(t *testing.T) {
	lo := []float64{-3, -3}
	hi := []float64{3, 3}
	opts := SAOptions{Iterations: 2000, Seed: 5}

	full, err := SimulatedAnnealing(sphere, lo, hi, &opts)
	if err != nil {
		t.Fatal(err)
	}
	var mid *SAState
	withCkpt := opts
	withCkpt.Checkpoint = func(s SAState) {
		if mid == nil && s.It >= 1000 {
			mid = &s
		}
	}
	if _, err := SimulatedAnnealing(sphere, lo, hi, &withCkpt); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no mid-run checkpoint captured")
	}
	resumed := opts
	resumed.Resume = mid
	got, err := SimulatedAnnealing(sphere, lo, hi, &resumed)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sa", full, got)
}

func TestDEResumeRejectsMismatchedState(t *testing.T) {
	lo := []float64{-1, -1}
	hi := []float64{1, 1}
	_, err := DifferentialEvolution(sphere, lo, hi, &DEOptions{
		Pop: 20, Generations: 10,
		Resume: &DEState{Gen: 2, Xs: [][]float64{{0, 0}}, Fs: []float64{0}},
	})
	if err != ErrBadInput {
		t.Fatalf("want ErrBadInput for mismatched resume state, got %v", err)
	}
}

func TestAttainRestartsRecoverFromBreaker(t *testing.T) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	ctrl := resilience.NewController(resilience.ControllerOptions{})
	// The raw objective fails for its first 60 calls, then heals —
	// simulating a transient fault burst. The breaker cuts attempt one
	// short; the jittered restart then completes cleanly.
	calls := 0
	raw := func(x []float64) []float64 {
		calls++
		if calls <= 60 {
			return []float64{math.NaN(), math.NaN()}
		}
		return sphereVec(x)
	}
	safe := resilience.NewSafeVector(raw, 2, &resilience.SafeOptions{BreakerK: 20, Control: ctrl})
	r, err := GoalAttainImproved(safe.Objective(), sphereGoals, lo, hi, &AttainOptions{
		GlobalEvals: 400, PolishEvals: 300, Control: ctrl, Restarts: 3,
	})
	if err != nil {
		t.Fatalf("restarted run should complete, got %v", err)
	}
	if len(r.X) == 0 || math.IsNaN(r.Gamma) {
		t.Fatalf("no usable result after restart: %+v", r)
	}
	if safe.BreakerTrips() == 0 {
		t.Fatal("breaker never tripped, test exercised nothing")
	}
}

func TestAttainRestartsExhaustOnPersistentFault(t *testing.T) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	ctrl := resilience.NewController(resilience.ControllerOptions{})
	raw := func([]float64) []float64 { return []float64{math.NaN(), math.NaN()} }
	safe := resilience.NewSafeVector(raw, 2, &resilience.SafeOptions{BreakerK: 10, Control: ctrl})
	_, err := GoalAttainImproved(safe.Objective(), sphereGoals, lo, hi, &AttainOptions{
		GlobalEvals: 400, PolishEvals: 300, Control: ctrl, Restarts: 2,
	})
	st, ok := resilience.AsStopped(err)
	if !ok || st.Reason != resilience.StopBreaker {
		t.Fatalf("want breaker stop after exhausted restarts, got %v", err)
	}
}
