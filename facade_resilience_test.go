package gnsslna

import (
	"context"
	"testing"
)

// TestFacadeStoppedPredicate exercises the public cancellation and budget
// knobs: stopped workflows fail with an error the Stopped predicate can
// name.
func TestFacadeStoppedPredicate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExtractModel("Angelov", Options{Quick: true, Context: ctx})
	if reason, ok := Stopped(err); !ok || reason != "canceled" {
		t.Fatalf("ExtractModel under canceled context: reason %q, ok %v, err %v", reason, ok, err)
	}

	_, err = DesignLNA(Options{Quick: true, MaxEvals: 500})
	if reason, ok := Stopped(err); !ok || reason != "eval-budget" {
		t.Fatalf("DesignLNA under eval budget: reason %q, ok %v, err %v", reason, ok, err)
	}

	if reason, ok := Stopped(nil); ok || reason != "" {
		t.Error("nil error must not be reported as stopped")
	}
}
