package gnsslna

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// The facade job server runs the full submit → execute → result loop over
// HTTP: a quick design job submitted to POST /jobs reaches succeeded and its
// result document is retrievable, and Shutdown drains cleanly.
func TestStartJobServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real quick design job")
	}
	js, err := StartJobServer(JobServerOptions{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := js.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	spec, _ := json.Marshal(map[string]any{
		"type": "design", "tenant": "facade", "seed": 1, "quick": true,
	})
	resp, err := http.Post(js.URL()+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for job.State != "succeeded" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID, job.State)
		}
		time.Sleep(50 * time.Millisecond)
		r, err := http.Get(js.URL() + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	r, err := http.Get(fmt.Sprintf("%s/jobs/%s/result", js.URL(), job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"design"`)) {
		t.Fatalf("result: status %d body %.200s", r.StatusCode, body)
	}
}
