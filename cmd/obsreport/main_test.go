package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnsslna/internal/campaign"
	"gnsslna/internal/obs/replay"
)

const fixtures = "../../internal/obs/replay/testdata"

func runCLI(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), errb.String()
}

func TestSummarySubcommand(t *testing.T) {
	out, _ := runCLI(t, "summary", filepath.Join(fixtures, "run_a.jsonl"))
	if !strings.Contains(out, "7 records") || !strings.Contains(out, "design.attain.de") {
		t.Fatalf("summary output:\n%s", out)
	}
}

// -json must survive scopes whose best objective is NaN (marshaled null).
func TestSummaryJSON(t *testing.T) {
	out, _ := runCLI(t, "summary", "-json", filepath.Join(fixtures, "run_a.jsonl"))
	var s replay.Summary
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, out)
	}
	if s.Records != 7 || s.TotalEvals != 120 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(out, `"best": null`) {
		t.Errorf("NaN best not marshaled as null:\n%s", out)
	}
}

func TestCompareSubcommand(t *testing.T) {
	out, _ := runCLI(t, "compare",
		filepath.Join(fixtures, "run_a.jsonl"), filepath.Join(fixtures, "run_b.jsonl"))
	for _, want := range []string{"design.attain.de", "+100.0%", "vna.campaign", "only"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	var deltas []replay.ScopeDelta
	jout, _ := runCLI(t, "compare", "-json",
		filepath.Join(fixtures, "run_a.jsonl"), filepath.Join(fixtures, "run_b.jsonl"))
	if err := json.Unmarshal([]byte(jout), &deltas); err != nil {
		t.Fatalf("compare JSON: %v", err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v, want 3 scopes", deltas)
	}
}

func TestTraceSubcommand(t *testing.T) {
	out, _ := runCLI(t, "trace", "-scope", "design.attain.de",
		filepath.Join(fixtures, "run_a.jsonl"))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("trace lines = %d, want 4:\n%s", len(lines), out)
	}
}

// A truncated journal is analyzed up to its last complete record, with a
// warning on stderr rather than a hard failure.
func TestTruncatedJournalDegrades(t *testing.T) {
	out, errOut := runCLI(t, "summary", filepath.Join(fixtures, "truncated.jsonl"))
	if !strings.Contains(errOut, "tail corrupt at line 2") {
		t.Fatalf("stderr missing tail warning: %q", errOut)
	}
	if !strings.Contains(out, "1 records") {
		t.Fatalf("summary of truncated journal:\n%s", out)
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb strings.Builder
	for _, args := range [][]string{
		{}, {"nonsense"}, {"summary"}, {"compare", "one.jsonl"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
	if err := run([]string{"summary", "does-not-exist.jsonl"}, &out, &errb); err == nil {
		t.Error("missing journal accepted")
	}
}

// The serve subcommand's text report is pinned verbatim: the fixtures are the
// two journals of a SIGKILLed lnaservd and its restart, and the analytics —
// merged timeline, attempt/retry attribution across processes, exact
// per-tenant wait and end-to-end percentiles — must not drift.
func TestServeSubcommandGolden(t *testing.T) {
	out, _ := runCLI(t, "serve",
		filepath.Join(fixtures, "serve_p1.jsonl"), filepath.Join(fixtures, "serve_p2.jsonl"))
	want := "" +
		"serve journal: 2 jobs, 2 done (2 succeeded, 0 failed, 0 quarantined, 0 canceled) over 160.0 ms (12.50 done/s)\n" +
		"attempts: 4 (2 retries, 2.0 ms backoff)\n" +
		"tenant                 jobs   done  attempts  retries wait_p50_ms wait_p95_ms wait_p99_ms    p50_ms    p95_ms    p99_ms\n" +
		"alpha                     1      1         3        2         5.0       105.0       105.0     160.0     160.0     160.0\n" +
		"beta                      1      1         1        0         3.0         3.0         3.0      15.0      15.0      15.0\n"
	if out != want {
		t.Fatalf("serve output drifted:\n got:\n%s\nwant:\n%s", out, want)
	}
}

func TestServeSubcommandJSON(t *testing.T) {
	out, _ := runCLI(t, "serve", "-json",
		filepath.Join(fixtures, "serve_p1.jsonl"), filepath.Join(fixtures, "serve_p2.jsonl"))
	var rep replay.ServeReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("serve JSON: %v\n%s", err, out)
	}
	if rep.Jobs != 2 || rep.Attempts != 4 || rep.Retries != 2 {
		t.Fatalf("serve report = %+v", rep)
	}
}

// Multiple journals merge onto one timeline: the trace killed in process 1
// continues in process 2 as one tree, and each job stays its own tree.
func TestTraceTreeAcrossJournals(t *testing.T) {
	out, _ := runCLI(t, "trace", "-tree",
		filepath.Join(fixtures, "serve_p1.jsonl"), filepath.Join(fixtures, "serve_p2.jsonl"))
	for _, want := range []string{
		"trace 7: 6 spans over 160.0 ms",
		"trace 9: 3 spans over 160.0 ms",
		"job.design.alpha", "job.design.beta", "job.attempt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged tree missing %q:\n%s", want, out)
		}
	}
}

// Multiple journals without -tree/-perfetto is an explicit error, not a
// silent analysis of the first file.
func TestTraceMultiJournalNeedsTree(t *testing.T) {
	err := run([]string{"trace",
		filepath.Join(fixtures, "serve_p1.jsonl"), filepath.Join(fixtures, "serve_p2.jsonl")},
		io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-tree or -perfetto") {
		t.Fatalf("err = %v", err)
	}
}

// writeCampaignSummary writes a minimal campaign summary fixture.
func writeCampaignSummary(t *testing.T, dir, name string, s *campaign.Summary) string {
	t.Helper()
	raw, err := s.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func campaignCell(id string, nf float64) campaign.CellResult {
	return campaign.CellResult{
		ID: id, Band: "l1", Spec: "gnss", Substrate: "ro4350",
		Device: "golden", Algorithm: "attain", Seed: 1,
		Status: "ok", MeetsSpec: true, Evals: 10,
		WorstNFdB: replay.OptFloat(nf), MinGTdB: replay.OptFloat(15),
		WorstS11dB: replay.OptFloat(-12), WorstS22dB: replay.OptFloat(-11),
		StabMargin: replay.OptFloat(0.05), PdcW: replay.OptFloat(0.1),
		Gamma: replay.OptFloat(-0.1),
	}
}

func TestCampaignDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	a := writeCampaignSummary(t, dir, "a.json", &campaign.Summary{
		Version: 1, Name: "x", SpecDigest: "d1", BaseSeed: 1, CellCount: 2, OKCount: 2,
		Cells: []campaign.CellResult{campaignCell("c1", 0.8), campaignCell("c2", 0.85)},
	})
	b := writeCampaignSummary(t, dir, "b.json", &campaign.Summary{
		Version: 1, Name: "x", SpecDigest: "d1", BaseSeed: 1, CellCount: 2, OKCount: 2,
		Cells: []campaign.CellResult{campaignCell("c1", 0.8), campaignCell("c3", 0.9)},
	})
	out, _ := runCLI(t, "campaign-diff", a, b)
	for _, want := range []string{
		"removed in B (only in A): c2",
		"added in B (only in B): c3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign-diff output missing %q:\n%s", want, out)
		}
	}
	// Identical inputs report identity, and -json parses back.
	out, _ = runCLI(t, "campaign-diff", a, a)
	if !strings.Contains(out, "identical: 2 cells") {
		t.Errorf("self-diff not identical:\n%s", out)
	}
	jout, _ := runCLI(t, "campaign-diff", "-json", a, b)
	var res campaign.DiffResult
	if err := json.Unmarshal([]byte(jout), &res); err != nil {
		t.Fatalf("campaign-diff JSON: %v\n%s", err, jout)
	}
	if res.Identical || len(res.Cells) != 3 {
		t.Fatalf("diff = %+v", res)
	}
}
