// Command obsreport analyzes JSONL run journals written by the -journal
// flag of lnaopt, extract and experiments: convergence traces, per-scope
// wall/eval attribution and run-to-run comparisons.
//
// Usage:
//
//	obsreport summary [-json] run.jsonl
//	obsreport compare [-json] a.jsonl b.jsonl
//	obsreport trace   [-json] [-scope design.attain] run.jsonl
//	obsreport trace   -tree run.jsonl [more.jsonl...]
//	obsreport trace   -perfetto run.jsonl [more.jsonl...] > trace.json
//	obsreport serve   [-json] run.jsonl [more.jsonl...]
//	obsreport campaign-diff [-json] a/campaign.summary.json b/campaign.summary.json
//
// The -tree form reconstructs the causal span tree (run → solver →
// generations → pool workers) from the trace identity stamped on each
// record; -perfetto emits the same tree as Chrome trace-event JSON for
// chrome://tracing or ui.perfetto.dev. Both accept several journals — the
// per-process journals of a crashed-and-restarted lnaservd — and stitch them
// onto one timeline via their epoch records, one tree per job trace.
//
// The serve form summarizes (merged) lnaservd journals: throughput, outcome
// and retry counts, scheduled backoff, and per-tenant exact queue-wait and
// end-to-end latency percentiles.
//
// The campaign-diff form compares two campaign summaries cell by cell:
// changed metrics (NaN-safe — two absent values are equal), plus explicit
// added/removed listings for cells present in only one campaign.
//
// A journal truncated by a crash mid-line is reported on stderr and
// analyzed up to its last complete record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gnsslna/internal/campaign"
	"gnsslna/internal/obs/replay"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: obsreport summary|compare|trace|serve|campaign-diff [flags] <journal.jsonl> [more.jsonl...]")
}

// loadMerged loads one or more journals and, when several are given, merges
// them onto one timeline anchored on their epoch records.
func loadMerged(paths []string, stderr io.Writer) (*replay.Run, error) {
	runs := make([]*replay.Run, 0, len(paths))
	for _, p := range paths {
		r, err := load(p, stderr)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	if len(runs) == 1 {
		return runs[0], nil
	}
	return replay.Merge(runs...), nil
}

// load parses one journal, degrading gracefully on a corrupt tail: the
// complete prefix is analyzed and the tail error is reported on stderr.
func load(path string, stderr io.Writer) (*replay.Run, error) {
	r, err := replay.ParseFile(path)
	if err != nil {
		if te, ok := replay.AsTailError(err); ok && r != nil {
			fmt.Fprintf(stderr, "obsreport: warning: %s: %v (analyzing the %d complete records)\n",
				path, te, len(r.Records))
			return r, nil
		}
		return nil, err
	}
	return r, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("obsreport "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	scope := fs.String("scope", "", "restrict the trace to one scope (trace only)")
	asTree := fs.Bool("tree", false, "render the causal span tree (trace only)")
	asPerfetto := fs.Bool("perfetto", false, "emit Chrome trace-event JSON (trace only)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	emit := func(v any) error {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	switch cmd {
	case "summary":
		if fs.NArg() != 1 {
			return usage()
		}
		r, err := load(fs.Arg(0), stderr)
		if err != nil {
			return err
		}
		if *asJSON {
			return emit(r.Summarize())
		}
		return replay.WriteSummaryText(stdout, filepath.Base(fs.Arg(0)), r)
	case "compare":
		if fs.NArg() != 2 {
			return usage()
		}
		a, err := load(fs.Arg(0), stderr)
		if err != nil {
			return err
		}
		b, err := load(fs.Arg(1), stderr)
		if err != nil {
			return err
		}
		if *asJSON {
			return emit(replay.Compare(a, b))
		}
		return replay.WriteCompareText(stdout,
			filepath.Base(fs.Arg(0)), filepath.Base(fs.Arg(1)), a, b)
	case "trace":
		if fs.NArg() < 1 {
			return usage()
		}
		if fs.NArg() > 1 && !*asPerfetto && !*asTree {
			return fmt.Errorf("multiple journals need -tree or -perfetto (merged trace reconstruction)")
		}
		r, err := loadMerged(fs.Args(), stderr)
		if err != nil {
			return err
		}
		switch {
		case *asPerfetto:
			return replay.WritePerfettoTrace(stdout, r)
		case *asTree:
			return replay.WriteTraceTree(stdout, r)
		case *asJSON:
			return emit(r.Trace(*scope))
		}
		return replay.WriteTraceText(stdout, *scope, r)
	case "serve":
		if fs.NArg() < 1 {
			return usage()
		}
		r, err := loadMerged(fs.Args(), stderr)
		if err != nil {
			return err
		}
		rep := replay.ServeSummary(r)
		if *asJSON {
			return emit(rep)
		}
		return replay.WriteServeText(stdout, rep)
	case "campaign-diff":
		if fs.NArg() != 2 {
			return usage()
		}
		a, err := campaign.LoadSummary(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := campaign.LoadSummary(fs.Arg(1))
		if err != nil {
			return err
		}
		if *asJSON {
			return emit(campaign.Diff(a, b))
		}
		return campaign.WriteDiffText(stdout, fs.Arg(0), fs.Arg(1), a, b)
	}
	return usage()
}
