// Command lnaservd is the design-as-a-service daemon: an HTTP/JSON job
// server where design, extraction and Monte-Carlo sweep jobs enter a
// durable, crash-safe work queue, pass per-tenant admission control, and are
// executed by a retrying worker fleet. A SIGKILL at any instant loses no
// acknowledged job: on restart, queued jobs are still queued and
// interrupted jobs resume from their checkpoints bit-identically.
//
// Usage:
//
//	lnaservd [-addr 127.0.0.1:8080] [-dir servd-data] [-workers N]
//	         [-tenants policy.json] [-rate R] [-burst B] [-inflight N]
//	         [-job-max-evals N] [-max-depth N] [-retries N]
//	         [-job-timeout 5m] [-drain-timeout 30s] [-journal run.jsonl]
//
// API:
//
//	POST /jobs             submit a job spec; 202 + job document on accept,
//	                       200 on dedupe, 429 + Retry-After over quota,
//	                       503 + Retry-After when full or draining
//	GET  /jobs?tenant=     list retained jobs
//	GET  /jobs/{id}        poll one job
//	GET  /jobs/{id}/result fetch a succeeded job's result document
//	POST /jobs/{id}/cancel cancel a queued or running job
//	GET  /healthz          readiness (degrades to 503 "draining" on shutdown)
//	GET  /metrics          Prometheus text format (gnsslna_jobs_* families)
//	GET  /events           live SSE event stream
//	GET  /debug/pprof      profiling
//
// The -tenants file maps tenant name to admission policy, optionally with
// service-level objectives (target p99 end-to-end latency in milliseconds and
// tolerated error-rate fraction) surfaced as jobs.slo.* burn-rate gauges on
// /metrics and in the /healthz document:
//
//	{"acme": {"rate_per_sec": 2, "burst": 5, "max_in_flight": 8,
//	          "max_evals_per_job": 200000,
//	          "slo_p99_ms": 30000, "slo_error_rate": 0.01}}
//
// Tenants absent from the file get the -rate/-burst/-inflight/-job-max-evals
// defaults (all zero: unlimited).
//
// SIGINT/SIGTERM degrade gracefully: /healthz flips to draining, new
// submissions get 503, in-flight jobs checkpoint and re-queue, and the
// journal closes cleanly for the next start to resume.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gnsslna/internal/obs"
	"gnsslna/internal/obs/export"
	"gnsslna/internal/resilience"
	"gnsslna/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen `address` for the job API")
	dir := flag.String("dir", "servd-data", "data root `directory` (queue journal + job artifacts)")
	workers := flag.Int("workers", 2, "worker fleet size")
	tenantsPath := flag.String("tenants", "", "JSON `file` mapping tenant name to admission policy")
	rate := flag.Float64("rate", 0, "default tenant admission rate (jobs/sec, 0: unlimited)")
	burst := flag.Float64("burst", 0, "default tenant burst capacity")
	inflight := flag.Int("inflight", 0, "default tenant in-flight job quota (0: unlimited)")
	jobMaxEvals := flag.Int64("job-max-evals", 0, "default per-job objective-evaluation cap (0: unlimited)")
	maxDepth := flag.Int("max-depth", 0, "queued-job bound before load shedding (0: 1024)")
	retries := flag.Int("retries", 3, "attempts per job on transient failure")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default wall-clock bound per job attempt")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on graceful shutdown")
	journal := flag.String("journal", "", "write a JSONL event journal to this `path`")
	flag.Parse()

	if err := run(*addr, *dir, *workers, *tenantsPath, serve.TenantPolicy{
		RatePerSec: *rate, Burst: *burst, MaxInFlight: *inflight, MaxEvalsPerJob: *jobMaxEvals,
	}, *maxDepth, *retries, *jobTimeout, *drainTimeout, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "lnaservd:", err)
		os.Exit(1)
	}
}

func loadTenants(path string) (map[string]serve.TenantPolicy, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var policies map[string]serve.TenantPolicy
	if err := json.Unmarshal(data, &policies); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return policies, nil
}

func run(addr, dir string, workers int, tenantsPath string, def serve.TenantPolicy,
	maxDepth, retries int, jobTimeout, drainTimeout time.Duration, journal string) error {
	tenants, err := loadTenants(tenantsPath)
	if err != nil {
		return err
	}

	// Observability: the shared registry backs /metrics, the broadcaster
	// feeds /events, and the journal anchors this process on the wall clock
	// (the epoch record) so replay.Merge can stitch restart journals onto one
	// timeline. The serve layer stamps every event with the owning job's
	// durable trace identity, so the sink must stay raw — wrapping it in a
	// Traced here would overwrite the cross-restart trace IDs.
	reg := obs.NewRegistry()
	bc := export.NewBroadcaster()
	bc.CountDrops(reg.Counter("sse.dropped"))
	var j *obs.Journal
	if journal != "" {
		if j, err = obs.OpenJournal(journal); err != nil {
			return err
		}
		defer j.Close()
		if err := j.AppendEpoch(); err != nil {
			return err
		}
	}
	hub := obs.NewHub(reg, j)

	s, err := serve.New(serve.Options{
		Dir:            dir,
		Workers:        workers,
		Queue:          serve.QueueOptions{MaxDepth: maxDepth},
		Tenants:        tenants,
		DefaultPolicy:  def,
		Retry:          resilience.RetryPolicy{MaxAttempts: retries},
		DefaultTimeout: jobTimeout,
		Registry:       reg,
		Observer:       obs.Multi(hub, bc),
		Broadcast:      bc,
	})
	if err != nil {
		return err
	}
	rep := s.Queue().Recovery()
	fmt.Fprintf(os.Stderr, "lnaservd: recovered %d queued, %d resumed, %d terminal jobs",
		rep.Queued, rep.Resumed, rep.Terminal)
	if n := len(rep.TailLosses); n > 0 {
		fmt.Fprintf(os.Stderr, " (%d torn journal tails amputated)", n)
	}
	fmt.Fprintln(os.Stderr)
	s.Start()

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "lnaservd: serving on http://%s (data in %s, %d workers)\n", addr, dir, workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}

	fmt.Fprintln(os.Stderr, "lnaservd: draining (in-flight jobs checkpoint and re-queue)")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Order matters: the serve layer flips /healthz to draining and parks
	// the fleet first, then the listener closes so in-progress status polls
	// finish.
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lnaservd: drain:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "lnaservd: stopped; restart resumes the queue")
	return nil
}
