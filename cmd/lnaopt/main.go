// Command lnaopt runs the complete multi-constellation preamplifier design
// flow: synthetic measurement campaign, three-step Angelov extraction, and
// improved goal-attainment selection of the operating point and passive
// elements. It prints the finished design and, optionally, its component
// sensitivity and specification yield.
//
// Usage:
//
//	lnaopt [-seed N] [-quick] [-sens] [-yield N]
//	       [-timeout 30s] [-max-evals N] [-checkpoint stages.jsonl]
//	       [-resume stages.jsonl] [-restarts N]
//	       [-journal run.jsonl] [-metrics] [-pprof localhost:6060]
//	       [-serve 127.0.0.1:9090]
//
// The run is interruptible: Ctrl-C (or an expired -timeout / exhausted
// -max-evals budget) stops the optimizers cooperatively and the best design
// found so far is reported together with the stop reason. With -checkpoint,
// completed stages (extraction, design) are recorded and a rerun with the
// same seed and budgets resumes from them bit-identically.
//
// With -serve, a live telemetry endpoint exposes /metrics (Prometheus text
// format), /healthz, /runs, /events (SSE) and /debug/pprof while the run is
// in flight; the first Ctrl-C drains it before the final report prints.
package main

import (
	"flag"
	"fmt"
	"os"

	"gnsslna/internal/core"
	"gnsslna/internal/experiments"
	"gnsslna/internal/obscli"
	"gnsslna/internal/resilience"
	"gnsslna/internal/units"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	quick := flag.Bool("quick", false, "use reduced optimization budgets")
	sens := flag.Bool("sens", false, "print the component sensitivity table")
	yieldN := flag.Int("yield", 0, "run an N-trial Monte Carlo tolerance yield analysis")
	bom := flag.Bool("bom", false, "design the DC bias network and print the bill of materials")
	vcc := flag.Float64("vcc", 5, "supply voltage for the bias network")
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()

	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnaopt:", err)
		os.Exit(1)
	}
	runErr := run(*seed, *quick, *sens, *yieldN, *bom, *vcc, session)
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "lnaopt:", runErr)
		os.Exit(1)
	}
}

func run(seed int64, quick, sens bool, yieldN int, bom bool, vcc float64, session *obscli.Session) error {
	suite := experiments.NewSuite(experiments.Config{
		Seed: seed, Quick: quick, Observer: session.Observer(),
		Control: session.Controller(), Checkpoint: session.Checkpoint(), Restarts: session.Restarts(),
		Workers: session.Workers(),
	})
	fmt.Println("extracting pHEMT model from the synthetic measurement campaign...")
	ex, err := suite.Extracted()
	if err != nil {
		return err
	}
	fmt.Printf("  extracted %s: DC rel RMSE %.2f%%, S RMSE %.4f\n",
		ex.Device.Name, ex.DC.RelRMSE*100, ex.SRMSE)

	fmt.Println("optimizing operating point and passive elements (improved goal attainment)...")
	res, err := suite.Design()
	if err != nil {
		st, ok := resilience.AsStopped(err)
		if !ok || res == nil {
			return err
		}
		fmt.Printf("  run stopped early (%s): reporting the best design found so far\n", st.Reason)
	}
	d := res.Snapped
	e := res.SnappedEval
	fmt.Printf("  gamma = %.3f (<= 0: all goals met), %d band evaluations\n\n", res.Gamma, res.Evals)
	fmt.Printf("operating point : Vgs=%.3f V  Vds=%.2f V  Ids=%.1f mA  Pdc=%.0f mW\n",
		d.Vgs, d.Vds, e.IdsA*1e3, e.PdcW*1e3)
	fmt.Printf("elements (E24)  : Lin=%s  Ldeg=%s  Lout=%s  Cout=%s\n",
		units.Format(d.LIn, "H"), units.Format(d.LDegen, "H"),
		units.Format(d.LOut, "H"), units.Format(d.COut, "F"))
	fmt.Printf("band 1.15-1.65  : NFmax=%.3f dB  GTmin=%.2f dB  S11<=%.1f dB  S22<=%.1f dB  stab margin=%.3f\n",
		e.WorstNFdB, e.MinGTdB, e.WorstS11dB, e.WorstS22dB, e.StabMargin)

	bands := core.GNSSBands()
	designer, err := suite.Designer()
	if err != nil {
		return err
	}
	amp, err := designer.Builder.Build(d)
	if err != nil {
		return err
	}
	fmt.Println("\nper-constellation performance:")
	for _, b := range bands {
		m, err := amp.MetricsAt(b.Center, 50)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %.5f GHz  NF=%.3f dB  GT=%.2f dB\n", b.Name, b.Center/1e9, m.NFdB, m.GTdB)
	}

	if sens {
		fmt.Println("\ncomponent sensitivity (+/-5%):")
		entries, err := designer.Sensitivity(d, 0.05)
		if err != nil {
			return err
		}
		for _, s := range entries {
			fmt.Printf("  %-8s dNF=%.3f dB  dGT=%.3f dB\n", s.Param, s.DeltaNFdB, s.DeltaGTdB)
		}
	}
	if yieldN > 0 {
		fmt.Printf("\nMonte Carlo yield (%d trials, 5%% element tolerance):\n", yieldN)
		rep, err := designer.Yield(d, 0.05, yieldN, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  pass rate %.0f%%  NF 95th percentile %.3f dB  GT 5th percentile %.2f dB\n",
			rep.PassRate*100, rep.NF95dB, rep.GT5dB)
	}
	if bom {
		bn, err := designer.DesignBiasNetwork(d, vcc)
		if err != nil {
			return err
		}
		fmt.Printf("\nbias network from %.1f V supply (nonlinear DC verified):\n", vcc)
		fmt.Printf("  achieved Vgs=%.3f V Vds=%.2f V Ids=%.1f mA\n",
			bn.Achieved.Vgs, bn.Achieved.Vds, bn.Achieved.IdsA*1e3)
		fmt.Println("\nbill of materials:")
		for _, l := range designer.BOM(d, bn) {
			fmt.Printf("  %-4s %-10s %s\n", l.Ref, l.Value, l.Role)
		}
		pu, err := designer.PowerUpCheck(bn, 1e-4)
		if err != nil {
			return err
		}
		fmt.Printf("\npower-up transient (100 us supply ramp): gate peak %.3f V, "+
			"settled %.3f V (overshoot %.1f%%), drain settles %.2f V\n",
			pu.GatePeak, pu.GateFinal, pu.OvershootFrac*100, pu.DrainFinal)
	}
	return nil
}
