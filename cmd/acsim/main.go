// Command acsim runs a SPICE-flavored AC netlist through the MNA engine and
// prints (or exports) the two-port S-parameters. It makes the simulator
// usable on arbitrary circuits without writing Go:
//
//	acsim circuit.cir              # print |S11|, |S21| over the .ac sweep
//	acsim -s2p out.s2p circuit.cir # also write a Touchstone file
//
// Netlist cards: R/L/C <n1> <n2> <value>, G <o+> <o-> <c+> <c-> <gm>,
// T <n1> <n2> Z0= LEN= [EPS= LOSS=], .ac lin|log <f1> <f2> <n>,
// .ports <in> <out>. Values accept engineering suffixes (5.6n, 1.5p, 1G).
//
// The shared observability flags (-journal, -metrics, -serve, -pprof, ...)
// are available as in lnaopt; the MNA solve is journaled as one span.
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"gnsslna/internal/mathx"
	"gnsslna/internal/netlist"
	"gnsslna/internal/obs"
	"gnsslna/internal/obscli"
	"gnsslna/internal/touchstone"
)

func main() {
	s2p := flag.String("s2p", "", "optional Touchstone output path")
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: acsim [-s2p out.s2p] <netlist file>")
		os.Exit(2)
	}
	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "acsim:", err)
		os.Exit(1)
	}
	runErr := run(flag.Arg(0), *s2p, session)
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "acsim:", runErr)
		os.Exit(1)
	}
}

func run(path, s2p string, session *obscli.Session) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := netlist.Parse(f)
	if err != nil {
		return err
	}
	if deck.Title != "" {
		fmt.Printf("* %s\n", deck.Title)
	}
	// One span per solve: the MNA sweep's frequency-point count is the
	// natural evaluation unit for the journal.
	_, endSolve := obs.StartSpan(session.Observer(), "acsim.solve")
	net, err := deck.Run()
	if err != nil {
		endSolve(0)
		return err
	}
	endSolve(int64(len(net.Freqs)))
	fmt.Println("f [GHz]    |S11| [dB]   |S21| [dB]   |S12| [dB]   |S22| [dB]")
	for i, fr := range net.Freqs {
		s := net.S[i]
		fmt.Printf("%8.4f   %10.2f   %10.2f   %10.2f   %10.2f\n",
			fr/1e9,
			mathx.DB20(cmplx.Abs(s[0][0])),
			mathx.DB20(cmplx.Abs(s[1][0])),
			mathx.DB20(cmplx.Abs(s[0][1])),
			mathx.DB20(cmplx.Abs(s[1][1])))
	}
	if s2p == "" {
		return nil
	}
	out, err := os.Create(s2p)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := touchstone.Write(out, net, touchstone.FormatDB, "acsim: "+deck.Title); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", s2p)
	return nil
}
