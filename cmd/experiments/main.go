// Command experiments regenerates the reconstructed evaluation tables and
// figures (E1-E9 in DESIGN.md).
//
// Usage:
//
//	experiments [-e e1|e2|...|e9|all] [-seed N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"gnsslna"
	"gnsslna/internal/experiments"
)

func main() {
	exp := flag.String("e", "all", "experiment to run: e1..e12 (and e4b) or all")
	seed := flag.Int64("seed", 1, "deterministic seed")
	quick := flag.Bool("quick", false, "use reduced optimization budgets")
	figs := flag.Bool("figs", false, "also render the ASCII figures")
	markdown := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	flag.Parse()

	if *markdown {
		s := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: *quick})
		tables, err := s.All()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for i := range tables {
			fmt.Println(tables[i].Markdown())
		}
		return
	}

	out, err := gnsslna.RunExperiment(*exp, gnsslna.Options{Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(out)

	if *figs {
		s := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: *quick})
		figures, err := s.Figures()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: figures:", err)
			os.Exit(1)
		}
		for _, f := range figures {
			fmt.Println()
			fmt.Print(f)
		}
	}
}
