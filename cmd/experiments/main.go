// Command experiments regenerates the reconstructed evaluation tables and
// figures (E1-E9 in DESIGN.md).
//
// Usage:
//
//	experiments [-e e1|e2|...|e12|all] [-seed N] [-quick]
//	            [-timeout 5m] [-max-evals N] [-checkpoint stages.jsonl]
//	            [-resume stages.jsonl] [-restarts N]
//	            [-journal run.jsonl] [-metrics] [-pprof localhost:6060]
//	            [-serve 127.0.0.1:9090]
//
// The run is interruptible: Ctrl-C (or an expired -timeout / exhausted
// -max-evals budget) stops the optimizers cooperatively with a typed stop
// reason. With -checkpoint, the shared stages (extraction, design) are
// recorded and a rerun with the same seed and budgets resumes from them.
//
// With -serve, a live telemetry endpoint exposes /metrics (Prometheus text
// format), /healthz, /runs, /events (SSE) and /debug/pprof while the run is
// in flight; the first Ctrl-C drains it before the final report prints.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"gnsslna/internal/experiments"
	"gnsslna/internal/obscli"
)

func main() {
	exp := flag.String("e", "all", "experiment to run: e1..e12 (and e4b) or all")
	seed := flag.Int64("seed", 1, "deterministic seed")
	quick := flag.Bool("quick", false, "use reduced optimization budgets")
	figs := flag.Bool("figs", false, "also render the ASCII figures")
	markdown := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()

	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runErr := run(*exp, *seed, *quick, *figs, *markdown, session)
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(exp string, seed int64, quick, figs, markdown bool, session *obscli.Session) error {
	s := experiments.NewSuite(experiments.Config{
		Seed: seed, Quick: quick, Observer: session.Observer(),
		Control: session.Controller(), Checkpoint: session.Checkpoint(), Restarts: session.Restarts(),
		Workers: session.Workers(),
	})

	if markdown {
		tables, err := s.All()
		if err != nil {
			return err
		}
		for i := range tables {
			fmt.Println(tables[i].Markdown())
		}
		return nil
	}

	if exp == "all" {
		tables, err := s.All()
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	} else {
		t, err := s.Run(exp)
		if err != nil {
			if errors.Is(err, experiments.ErrUnknownExperiment) {
				return fmt.Errorf("unknown experiment %q (want %s or all)",
					exp, strings.Join(s.IDs(), ", "))
			}
			return err
		}
		fmt.Print(t.Render())
	}

	if figs {
		figures, err := s.Figures()
		if err != nil {
			return fmt.Errorf("figures: %w", err)
		}
		for _, f := range figures {
			fmt.Println()
			fmt.Print(f)
		}
	}
	return nil
}
