// Command campaign runs declarative design campaigns: a YAML/JSON spec
// enumerates a (band, spec, substrate, device variant, algorithm, seed)
// grid, and each cell is optimized deterministically and checkpointed, so
// a killed run resumes bit-identically.
//
// Usage:
//
//	campaign run   -spec examples/campaigns/gnss-l1-l5.yaml -out out/ [-parallel N] [-journal run.jsonl]
//	campaign cells -spec examples/campaigns/gnss-l1-l5.yaml [-json]
//	campaign check -out out/
//
// run executes (or resumes) the campaign into -out: cells already recorded
// in out/campaign.checkpoint.jsonl under the identical spec are restored,
// the rest computed, and campaign.summary.json plus RESULTS.md written.
// cells prints the expanded grid without running anything. check is the
// publish gate: the summary must parse, match its own counts, contain no
// failed cells, and regenerate RESULTS.md byte-identically.
//
// Compare two campaign outputs with `obsreport campaign-diff`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gnsslna/internal/campaign"
	"gnsslna/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: campaign run|cells|check [flags] (see go doc gnsslna/cmd/campaign)")
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("campaign "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "campaign spec file (.yaml/.yml/.json)")
	outDir := fs.String("out", "", "output directory (summary, RESULTS.md, checkpoint)")
	parallel := fs.Int("parallel", 1, "cells optimized concurrently (never changes results)")
	journalPath := fs.String("journal", "", "write solver convergence events to this JSONL journal")
	asJSON := fs.Bool("json", false, "emit JSON instead of text (cells only)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usage()
	}

	switch cmd {
	case "run":
		if *specPath == "" || *outDir == "" {
			return usage()
		}
		spec, err := campaign.Load(*specPath)
		if err != nil {
			return err
		}
		opts := campaign.RunOptions{
			OutDir:   *outDir,
			Parallel: *parallel,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(stderr, "campaign: "+format+"\n", a...)
			},
		}
		if *journalPath != "" {
			j, err := obs.OpenJournal(*journalPath)
			if err != nil {
				return err
			}
			defer j.Close()
			if err := j.AppendEpoch(); err != nil {
				return err
			}
			opts.Observer = obs.NewHub(nil, j)
		}
		s, err := campaign.Run(spec, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "campaign %s: %d cells, %d ok, %d meet spec -> %s\n",
			s.Name, s.CellCount, s.OKCount, s.MeetsSpecCount,
			filepath.Join(*outDir, campaign.SummaryFile))
		if s.OKCount != s.CellCount {
			return fmt.Errorf("%d cells failed (see %s)", s.CellCount-s.OKCount, filepath.Join(*outDir, campaign.ResultsFile))
		}
		return nil
	case "cells":
		if *specPath == "" {
			return usage()
		}
		spec, err := campaign.Load(*specPath)
		if err != nil {
			return err
		}
		cells := spec.Expand()
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(cells)
		}
		fmt.Fprintf(stdout, "campaign %s (digest %s): %d cells\n", spec.Name, spec.Digest(), len(cells))
		for _, c := range cells {
			fmt.Fprintf(stdout, "  %3d  %s\n", c.Index, c.ID)
		}
		return nil
	case "check":
		if *outDir == "" {
			return usage()
		}
		return check(stdout, *outDir)
	}
	return usage()
}

// check is the publish gate of a finished campaign directory.
func check(stdout io.Writer, dir string) error {
	s, err := campaign.LoadSummary(filepath.Join(dir, campaign.SummaryFile))
	if err != nil {
		return err
	}
	if s.CellCount != len(s.Cells) {
		return fmt.Errorf("check: summary cell_count %d != %d cells", s.CellCount, len(s.Cells))
	}
	ok, meets := 0, 0
	for _, c := range s.Cells {
		if c.Status == "ok" {
			ok++
		}
		if c.MeetsSpec {
			meets++
		}
	}
	if ok != s.OKCount || meets != s.MeetsSpecCount {
		return fmt.Errorf("check: summary counts (%d ok, %d meet) disagree with cells (%d, %d)",
			s.OKCount, s.MeetsSpecCount, ok, meets)
	}
	if ok != s.CellCount {
		return fmt.Errorf("check: %d of %d cells failed", s.CellCount-ok, s.CellCount)
	}
	// RESULTS.md must be the summary's own rendering — regenerating it
	// must change nothing.
	md, err := os.ReadFile(filepath.Join(dir, campaign.ResultsFile))
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	if string(md) != s.ResultsMarkdown() {
		return fmt.Errorf("check: RESULTS.md is stale — regenerate it with campaign run")
	}
	fmt.Fprintf(stdout, "check ok: campaign %s, %d cells, %d meet spec, RESULTS.md current\n",
		s.Name, s.CellCount, s.MeetsSpecCount)
	return nil
}
