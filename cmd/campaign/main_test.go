package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnsslna/internal/campaign"
)

const smokeSpec = "../../examples/campaigns/smoke.yaml"

func runCLI(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestCellsSubcommand(t *testing.T) {
	out, _ := runCLI(t, "cells", "-spec", smokeSpec)
	for _, want := range []string{"campaign smoke", "2 cells",
		"l1.gnss.ro4350.golden.attain.s1", "l1.gnss.ro4350.golden.attain.s2"} {
		if !strings.Contains(out, want) {
			t.Errorf("cells output missing %q:\n%s", want, out)
		}
	}
	jout, _ := runCLI(t, "cells", "-json", "-spec", smokeSpec)
	var cells []campaign.Cell
	if err := json.Unmarshal([]byte(jout), &cells); err != nil {
		t.Fatalf("cells JSON: %v", err)
	}
	if len(cells) != 2 || cells[1].Seed != 2 {
		t.Fatalf("cells = %+v", cells)
	}
}

// TestRunResumeCheckEndToEnd drives the committed smoke campaign through
// the full CLI surface: run, kill-free resume (summary deleted, rerun from
// checkpoint, bytes identical), and the check publish gate.
func TestRunResumeCheckEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign run skipped in -short")
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")
	out, _ := runCLI(t, "run", "-spec", smokeSpec, "-out", dir, "-parallel", "2", "-journal", journal)
	if !strings.Contains(out, "campaign smoke: 2 cells, 2 ok") {
		t.Fatalf("run output:\n%s", out)
	}
	first, err := os.ReadFile(filepath.Join(dir, campaign.SummaryFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal not written: %v", err)
	}

	// Resume: with the summary gone but the checkpoint intact, the rerun
	// restores every cell and regenerates identical bytes.
	if err := os.Remove(filepath.Join(dir, campaign.SummaryFile)); err != nil {
		t.Fatal(err)
	}
	_, errOut := runCLI(t, "run", "-spec", smokeSpec, "-out", dir)
	if !strings.Contains(errOut, "2 restored from checkpoint") {
		t.Fatalf("rerun recomputed cells:\n%s", errOut)
	}
	second, err := os.ReadFile(filepath.Join(dir, campaign.SummaryFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("resumed summary differs from the original run")
	}

	out, _ = runCLI(t, "check", "-out", dir)
	if !strings.Contains(out, "check ok") {
		t.Fatalf("check output:\n%s", out)
	}

	// A stale RESULTS.md must fail the publish gate.
	if err := os.WriteFile(filepath.Join(dir, campaign.ResultsFile), []byte("tampered\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"check", "-out", dir}, &sb, &sb); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("tampered RESULTS.md passed check: %v", err)
	}
}

// Every committed example campaign must load, validate and expand.
func TestCommittedExamplesLoad(t *testing.T) {
	matches, err := filepath.Glob("../../examples/campaigns/*.yaml")
	if err != nil || len(matches) < 3 {
		t.Fatalf("examples missing: %v (%v)", matches, err)
	}
	for _, path := range matches {
		spec, err := campaign.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if cells := spec.Expand(); len(cells) < 2 {
			t.Errorf("%s: only %d cells", path, len(cells))
		}
	}
}

// The paper scenario is the acceptance-criteria example: at least 4 cells.
func TestPaperCampaignHasFourCells(t *testing.T) {
	spec, err := campaign.Load("../../examples/campaigns/gnss-l1-l5.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if cells := spec.Expand(); len(cells) < 4 {
		t.Fatalf("paper campaign expands to %d cells, want >= 4", len(cells))
	}
}

func TestBadUsage(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{}, {"nonsense"}, {"run"}, {"run", "-spec", smokeSpec}, {"cells"}, {"check"},
	} {
		if err := run(args, &sb, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
}
