package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnsslna/internal/obs/benchjson"
)

func writePoint(t *testing.T, dir, name string, ns map[string]float64) {
	t.Helper()
	f := benchjson.File{Schema: benchjson.Schema, Commit: "test", Date: "2026-08-05"}
	for bname, v := range ns {
		f.Benchmarks = append(f.Benchmarks, benchjson.Result{Name: bname, NsPerOp: v, Iterations: 1})
	}
	if err := benchjson.WriteFile(filepath.Join(dir, name), f); err != nil {
		t.Fatal(err)
	}
}

// The compare subcommand gates the two newest trajectory points: a 50%
// ns/op regression fails with exit-worthy errRegression, noise within the
// threshold passes.
func TestCompareGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writePoint(t, dir, "BENCH_0.json", map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 2000})
	writePoint(t, dir, "BENCH_1.json", map[string]float64{"BenchmarkA": 1500, "BenchmarkB": 2000})

	var out, errb strings.Builder
	err := run([]string{"compare", "-dir", dir}, &out, &errb)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "BenchmarkA") {
		t.Fatalf("report:\n%s", out.String())
	}

	// Replace the candidate with one inside the noise threshold: passes.
	writePoint(t, dir, "BENCH_1.json", map[string]float64{"BenchmarkA": 1050, "BenchmarkB": 1980})
	out.Reset()
	if err := run([]string{"compare", "-dir", dir}, &out, &errb); err != nil {
		t.Fatalf("noise compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("report:\n%s", out.String())
	}
}

func TestCompareExplicitFilesAndThreshold(t *testing.T) {
	dir := t.TempDir()
	writePoint(t, dir, "BENCH_0.json", map[string]float64{"BenchmarkA": 1000})
	writePoint(t, dir, "BENCH_1.json", map[string]float64{"BenchmarkA": 1200})

	var out, errb strings.Builder
	// +20% passes a 25% threshold...
	if err := run([]string{"compare", "-dir", dir, "-threshold", "25"}, &out, &errb); err != nil {
		t.Fatalf("threshold 25: %v", err)
	}
	// ...and fails a 15% one, with explicit -old/-new selection.
	err := run([]string{"compare",
		"-old", filepath.Join(dir, "BENCH_0.json"),
		"-new", filepath.Join(dir, "BENCH_1.json"),
		"-threshold", "15"}, &out, &errb)
	if !errors.Is(err, errRegression) {
		t.Fatalf("threshold 15: err = %v, want errRegression", err)
	}
}

func TestCompareSinglePointIsNotAFailure(t *testing.T) {
	dir := t.TempDir()
	writePoint(t, dir, "BENCH_0.json", map[string]float64{"BenchmarkA": 1000})
	var out, errb strings.Builder
	if err := run([]string{"compare", "-dir", dir}, &out, &errb); err != nil {
		t.Fatalf("single point: %v", err)
	}
	if !strings.Contains(out.String(), "nothing to gate against") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestCompareEmptyDirErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"compare", "-dir", t.TempDir()}, &out, &errb); err == nil {
		t.Fatal("empty trajectory dir accepted")
	}
}

// A missing or unparseable trajectory point must name the offending file
// and tell the operator how to recover, not surface a bare library error.
func TestCompareActionableErrors(t *testing.T) {
	dir := t.TempDir()
	writePoint(t, dir, "BENCH_0.json", map[string]float64{"BenchmarkA": 1000})
	missing := filepath.Join(dir, "BENCH_9.json")

	var out, errb strings.Builder
	err := run([]string{"compare",
		"-old", filepath.Join(dir, "BENCH_0.json"), "-new", missing}, &out, &errb)
	if err == nil {
		t.Fatal("missing candidate accepted")
	}
	for _, want := range []string{missing, "candidate", "benchgate run", "-new"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing-file error %q lacks %q", err, want)
		}
	}

	corrupt := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(corrupt, []byte(`{"schema":1,"benchmarks":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"compare", "-dir", dir}, &out, &errb)
	if err == nil {
		t.Fatal("corrupt candidate accepted")
	}
	for _, want := range []string{corrupt, "candidate", "benchgate run"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("corrupt-file error %q lacks %q", err, want)
		}
	}

	// Parseable but empty counts as damage too: a zero-benchmark baseline
	// would make every gate vacuously pass.
	writePoint(t, dir, "BENCH_1.json", nil)
	err = run([]string{"compare", "-dir", dir}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks") {
		t.Fatalf("empty point error = %v, want mention of no benchmarks", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	for _, args := range [][]string{{}, {"bogus"}} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
}
