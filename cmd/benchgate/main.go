// Command benchgate maintains the repository's benchmark trajectory: `run`
// executes the pinned benchmark set and appends a BENCH_<n>.json point,
// `compare` gates the newest point against the previous one and exits
// non-zero on a ns/op regression.
//
// Usage:
//
//	benchgate run [-dir .] [-pkg .] [-bench ^Benchmark] [-benchtime 1s]
//	              [-count 1] [-commit REV] [-date YYYY-MM-DD] [-note TEXT]
//	benchgate compare [-dir .] [-threshold 10] [-old BENCH_0.json] [-new BENCH_1.json]
//
// The commit and date stamped into the file come from the flags (defaulting
// to `git rev-parse --short HEAD` and today); the benchjson library itself
// never reads the clock, keeping the trajectory format reproducible.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"gnsslna/internal/obs/benchjson"
)

// errRegression distinguishes a failed gate (exit 1 with the report already
// printed) from operational errors.
var errRegression = errors.New("benchmark regression gate failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
		}
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: benchgate run|compare [flags]")
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "run":
		return runBench(args[1:], stdout, stderr)
	case "compare":
		return compare(args[1:], stdout, stderr)
	}
	return usage()
}

func runBench(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	pkg := fs.String("pkg", ".", "package pattern passed to go test")
	bench := fs.String("bench", "^Benchmark", "benchmark regexp (the pinned set)")
	benchtime := fs.String("benchtime", "1s", "go test -benchtime value")
	count := fs.Int("count", 1, "go test -count value")
	commit := fs.String("commit", "", "commit id to stamp (default: git rev-parse --short HEAD)")
	date := fs.String("date", "", "date to stamp, YYYY-MM-DD (default: today, UTC)")
	note := fs.String("note", "", "free-form provenance note to stamp (e.g. machine re-anchor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *commit == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			*commit = strings.TrimSpace(string(out))
		}
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", fmt.Sprint(*count), *pkg)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(stdout, &buf)
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	results, err := benchjson.ParseBench(&buf)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmarks matched %q in %s", *bench, *pkg)
	}
	path, err := benchjson.NextPath(*dir)
	if err != nil {
		return err
	}
	f := benchjson.File{
		Schema: benchjson.Schema, Commit: *commit, Date: *date,
		GoVersion: runtime.Version(), Note: *note, Benchmarks: results,
	}
	if err := benchjson.WriteFile(path, f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchgate: wrote %s (%d benchmarks, commit %s, %s)\n",
		path, len(results), f.Commit, f.Date)
	return nil
}

// readPoint loads one trajectory point, labelling any failure with the
// point's role in the comparison and what the operator can do about it: a
// gate that dies with a bare unmarshal error in CI wastes a round trip.
func readPoint(role, flagName, path string) (benchjson.File, error) {
	f, err := benchjson.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return f, fmt.Errorf("%s point %s does not exist — run `benchgate run` to record it, or point %s at an existing BENCH_<n>.json: %w",
			role, path, flagName, err)
	case err != nil:
		return f, fmt.Errorf("%s point %s is not a valid BENCH_<n>.json — delete it and re-record with `benchgate run` (or pick another via %s): %w",
			role, path, flagName, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s point %s holds no benchmarks (truncated write or hand edit?) — delete it and re-record with `benchgate run`",
			role, path)
	}
	return f, nil
}

func compare(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding the BENCH_<n>.json trajectory")
	threshold := fs.Float64("threshold", 10, "ns/op regression threshold, percent")
	oldPath := fs.String("old", "", "baseline file (default: second-newest BENCH_<n>.json)")
	newPath := fs.String("new", "", "candidate file (default: newest BENCH_<n>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		paths, err := benchjson.List(*dir)
		if err != nil {
			return err
		}
		if *newPath == "" {
			if len(paths) == 0 {
				return fmt.Errorf("no BENCH_<n>.json files in %s (run `benchgate run` first)", *dir)
			}
			*newPath = paths[len(paths)-1]
			paths = paths[:len(paths)-1]
		}
		if *oldPath == "" {
			if len(paths) == 0 {
				fmt.Fprintf(stdout, "benchgate: only one trajectory point (%s); nothing to gate against\n", *newPath)
				return nil
			}
			*oldPath = paths[len(paths)-1]
		}
	}
	oldF, err := readPoint("baseline", "-old", *oldPath)
	if err != nil {
		return err
	}
	newF, err := readPoint("candidate", "-new", *newPath)
	if err != nil {
		return err
	}
	rep := benchjson.Compare(oldF, newF, *threshold)
	if err := benchjson.WriteReportText(stdout, *oldPath, *newPath, rep); err != nil {
		return err
	}
	if rep.Failed() {
		fmt.Fprintf(stderr, "benchgate: FAIL: %d regression(s), %d missing benchmark(s)\n",
			len(rep.Regressions()), len(rep.Missing))
		return errRegression
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}
