// Command sweep evaluates the optimized preamplifier over frequency and
// prints the paper-style S-parameter/NF table, optionally exporting the
// response as a Touchstone file.
//
// Usage:
//
//	sweep [-seed N] [-quick] [-from GHz] [-to GHz] [-points N] [-s2p FILE]
//
// The shared observability flags (-journal, -metrics, -serve, -pprof,
// -timeout, -max-evals, -workers, ...) are available as in lnaopt.
package main

import (
	"flag"
	"fmt"
	"os"

	"gnsslna/internal/experiments"
	"gnsslna/internal/mathx"
	"gnsslna/internal/obscli"
	"gnsslna/internal/touchstone"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	quick := flag.Bool("quick", false, "use reduced optimization budgets")
	from := flag.Float64("from", 1.0, "sweep start in GHz")
	to := flag.Float64("to", 1.8, "sweep stop in GHz")
	points := flag.Int("points", 17, "number of sweep points")
	s2p := flag.String("s2p", "", "optional Touchstone output path")
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()

	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	runErr := run(*seed, *quick, *from*1e9, *to*1e9, *points, *s2p, session)
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "sweep:", runErr)
		os.Exit(1)
	}
}

func run(seed int64, quick bool, from, to float64, points int, s2p string, session *obscli.Session) error {
	if points < 2 || to <= from {
		return fmt.Errorf("invalid sweep range")
	}
	suite := experiments.NewSuite(experiments.Config{
		Seed: seed, Quick: quick, Observer: session.Observer(),
		Control: session.Controller(), Checkpoint: session.Checkpoint(),
		Restarts: session.Restarts(), Workers: session.Workers(),
	})
	res, err := suite.Design()
	if err != nil {
		return err
	}
	designer, err := suite.Designer()
	if err != nil {
		return err
	}
	amp, err := designer.Builder.Build(res.Snapped)
	if err != nil {
		return err
	}
	freqs := mathx.Linspace(from, to, points)
	fmt.Println("f [GHz]   NF [dB]  Fmin [dB]  GT [dB]  S11 [dB]  S22 [dB]      K     mu   tg [ns]")
	for _, f := range freqs {
		m, err := amp.MetricsAt(f, 50)
		if err != nil {
			return err
		}
		gd, err := amp.GroupDelay(f, 50, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%7.4f  %7.3f  %9.3f  %7.2f  %8.1f  %8.1f  %5.2f  %5.3f  %8.3f\n",
			f/1e9, m.NFdB, m.FminDB, m.GTdB, m.S11dB, m.S22dB, m.K, m.Mu, gd*1e9)
	}
	if s2p == "" {
		return nil
	}
	net, err := amp.Network(freqs, 50)
	if err != nil {
		return err
	}
	out, err := os.Create(s2p)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := touchstone.Write(out, net, touchstone.FormatDB,
		"gnsslna optimized multi-constellation preamplifier"); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", s2p)
	return nil
}
