// Command extract runs the three-step pHEMT identification against the
// synthetic measurement campaign and reports the extracted parameters. It
// can also export the measured and modeled S-parameters as Touchstone
// files for external plotting.
//
// Usage:
//
//	extract [-model Angelov|Curtice-2|Curtice-3|Statz|TOM] [-seed N]
//	        [-quick] [-out DIR] [-timeout 30s] [-max-evals N]
//	        [-checkpoint stages.jsonl] [-resume stages.jsonl]
//	        [-journal run.jsonl] [-metrics] [-pprof localhost:6060]
//	        [-serve 127.0.0.1:9090]
//
// The run is interruptible: Ctrl-C (or an expired -timeout / exhausted
// -max-evals budget) stops the fit cooperatively with a typed stop reason.
// With -checkpoint, a completed extraction is recorded and a rerun with the
// same model, seed and budgets restores it instead of recomputing.
//
// With -serve, a live telemetry endpoint exposes /metrics (Prometheus text
// format), /healthz, /runs, /events (SSE) and /debug/pprof while the run is
// in flight; the first Ctrl-C drains it before the final report prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gnsslna/internal/device"
	"gnsslna/internal/extract"
	"gnsslna/internal/obscli"
	"gnsslna/internal/resilience"
	"gnsslna/internal/touchstone"
	"gnsslna/internal/twoport"
	"gnsslna/internal/vna"
)

func main() {
	model := flag.String("model", "Angelov", "DC model class to extract")
	seed := flag.Int64("seed", 1, "deterministic seed")
	quick := flag.Bool("quick", false, "use reduced fitting budgets")
	outDir := flag.String("out", "", "directory for measured/modeled .s2p exports")
	obsFlags := obscli.Register(flag.CommandLine)
	flag.Parse()

	session, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "extract:", err)
		os.Exit(1)
	}
	runErr := run(*model, *seed, *quick, *outDir, session)
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "extract:", runErr)
		os.Exit(1)
	}
}

func run(model string, seed int64, quick bool, outDir string, session *obscli.Session) error {
	var dc device.DCModel
	for _, m := range device.AllModels() {
		if strings.EqualFold(m.Name(), model) {
			dc = m
			break
		}
	}
	if dc == nil {
		return fmt.Errorf("unknown model %q", model)
	}
	var dsExport *vna.Dataset

	// The checkpoint stage key folds the model name in, so different model
	// classes never restore each other's results.
	stage := "extract." + dc.Name()
	var res extract.Result
	restored := false
	if path := session.Checkpoint(); path != "" {
		ok, err := resilience.RestoreCheckpoint(path, stage, seed, quick, &res)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", path, err)
		}
		restored = ok && res.Device != nil
	}
	if restored {
		fmt.Printf("restored completed %s extraction from %s\n", dc.Name(), session.Checkpoint())
		if err := dc.SetParams(res.Device.DC.Params()); err != nil {
			return err
		}
	} else {
		fmt.Println("running synthetic measurement campaign (VNA + DC analyzer)...")
		campaign := vna.DefaultCampaign(seed)
		campaign.Observer = session.Observer()
		ds, err := vna.RunCampaign(device.Golden(), campaign)
		if err != nil {
			return err
		}
		cfg := extract.Config{Seed: seed, Observer: session.Observer(), Control: session.Controller(), Workers: session.Workers()}
		if quick {
			cfg.DCEvals, cfg.GlobalEvals, cfg.RefineIters = 6000, 2500, 20
		}
		fmt.Printf("extracting %s (three-step: cold-FET direct + DE + LM)...\n", dc.Name())
		res, err = extract.ThreeStep(ds, dc, cfg)
		if err != nil {
			return err
		}
		if path := session.Checkpoint(); path != "" {
			if err := resilience.SaveCheckpoint(path, stage, seed, quick, res); err != nil {
				return fmt.Errorf("checkpoint %s: %w", path, err)
			}
		}
		dsExport = ds
	}

	fmt.Printf("\nstep 1 parasitics: Rg=%.2f Rs=%.2f Rd=%.2f ohm  Lg=%.0f Ls=%.0f Ld=%.0f pH\n",
		res.Cold.Ext.Rg, res.Cold.Ext.Rs, res.Cold.Ext.Rd,
		res.Cold.Ext.Lg*1e12, res.Cold.Ext.Ls*1e12, res.Cold.Ext.Ld*1e12)
	fmt.Printf("step 2 DC fit    : RMSE %.3f mA (%.2f%% rel) over the I-V grid\n",
		res.DC.RMSE*1e3, res.DC.RelRMSE*100)
	fmt.Printf("step 2 RF (DE)   : normalized S RMSE %.4f\n", res.SRMSEAfterDE)
	fmt.Printf("step 3 (LM joint): normalized S RMSE %.4f after %d S evaluations\n",
		res.SRMSE, res.SEvals)
	fmt.Printf("\n%s parameters:\n", dc.Name())
	names := dc.ParamNames()
	for i, v := range dc.Params() {
		fmt.Printf("  %-8s %.5g\n", names[i], v)
	}
	d := res.Device
	fmt.Printf("RF parameters:\n  Cgs0=%.3g pF  CgsPinch=%.3g pF  Cgd0=%.3g pF  Cds=%.3g pF\n"+
		"  Ri=%.2f ohm  Tau=%.2f ps  Cpg=%.3g pF  Cpd=%.3g pF\n",
		d.Caps.Cgs0*1e12, d.Caps.CgsPinch*1e12, d.Caps.Cgd0*1e12, d.Caps.Cds*1e12,
		d.Ri, d.Tau*1e12, d.Ext.Cpg*1e12, d.Ext.Cpd*1e12)

	if outDir == "" {
		return nil
	}
	if dsExport == nil {
		// The extraction was restored from a checkpoint; rerun only the
		// (cheap) measurement campaign to export against.
		campaign := vna.DefaultCampaign(seed)
		campaign.Observer = session.Observer()
		ds, err := vna.RunCampaign(device.Golden(), campaign)
		if err != nil {
			return err
		}
		dsExport = ds
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for i, set := range dsExport.Hot {
		measPath := filepath.Join(outDir, fmt.Sprintf("measured_bias%d.s2p", i+1))
		if err := writeNet(measPath, set.Net,
			fmt.Sprintf("golden device measured at Vgs=%.2f Vds=%.2f", set.Bias.Vgs, set.Bias.Vds)); err != nil {
			return err
		}
		mats := make([]twoport.Mat2, len(set.Net.Freqs))
		for k, f := range set.Net.Freqs {
			s, err := d.SAt(set.Bias, f, dsExport.Z0)
			if err != nil {
				return err
			}
			mats[k] = s
		}
		modelNet, err := twoport.NewNetwork(dsExport.Z0, set.Net.Freqs, mats)
		if err != nil {
			return err
		}
		modelPath := filepath.Join(outDir, fmt.Sprintf("model_bias%d.s2p", i+1))
		if err := writeNet(modelPath, modelNet,
			fmt.Sprintf("extracted %s at Vgs=%.2f Vds=%.2f", dc.Name(), set.Bias.Vgs, set.Bias.Vds)); err != nil {
			return err
		}
	}
	fmt.Printf("\nwrote %d Touchstone file pairs to %s\n", len(dsExport.Hot), outDir)
	return nil
}

func writeNet(path string, net *twoport.Network, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return touchstone.Write(f, net, touchstone.FormatMA, comment)
}
