// Command lnaload is the synthetic traffic generator for lnaservd: it
// submits jobs from several simulated tenants at configured rates and
// reports, per tenant, how admission control and load shedding treated the
// traffic — accepted, deduplicated, rate-limited (429), shed or refused
// (503) — plus the observed submit latency.
//
// Usage:
//
//	lnaload [-url http://127.0.0.1:8080] [-duration 10s] [-seed 1]
//	        [-tenants burst:20,steady:5,probe:1] [-type design] [-quick]
//
// The -tenants spec is a comma list of name:ratePerSec pairs; each tenant
// submits at that rate with deterministic jitter (seeded, so two runs of
// lnaload against an idle server produce the same request schedule). The
// exit report includes the server's final /healthz document, so an overload
// run shows the queue depth stayed bounded while the over-quota tenant —
// and only that tenant — absorbed the 429s.
//
// With -soak, the generator additionally tracks every accepted job to its
// terminal state after the traffic window closes and reports per tenant the
// end-to-end (submit→done, server-stamped) latency percentiles p50/p95/p99
// plus a Jain fairness index over per-tenant completions — 1.0 is perfectly
// even service; equal-policy tenants on a healthy server should stay ≥ 0.95.
// This is the sustained-load mode `make soak-smoke` drives.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type tenantLoad struct {
	name string
	rate float64
}

type tenantStats struct {
	submitted, accepted, deduped, rate429, refused503, errors int
	latency                                                   time.Duration
}

func parseTenants(spec string) ([]tenantLoad, error) {
	var out []tenantLoad
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rateStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("tenant %q: want name:ratePerSec", part)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("tenant %q: bad rate %q", name, rateStr)
		}
		out = append(out, tenantLoad{name: name, rate: rate})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tenants spec")
	}
	return out, nil
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "lnaservd base `URL`")
	duration := flag.Duration("duration", 10*time.Second, "traffic duration")
	seed := flag.Int64("seed", 1, "deterministic request-schedule seed")
	tenantsSpec := flag.String("tenants", "burst:20,steady:5,probe:1", "comma list of tenant:ratePerSec")
	jobType := flag.String("type", "design", "job type to submit (design, extract, sweep)")
	quick := flag.Bool("quick", true, "submit quick-budget jobs")
	soak := flag.Bool("soak", false, "track accepted jobs to terminal and report per-tenant latency percentiles + fairness")
	drain := flag.Duration("drain", 60*time.Second, "soak mode: bound on waiting for accepted jobs to finish")
	flag.Parse()

	tenants, err := parseTenants(*tenantsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lnaload:", err)
		os.Exit(1)
	}

	stats := make(map[string]*tenantStats, len(tenants))
	for _, tl := range tenants {
		stats[tl.name] = &tenantStats{}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var soakJobs []soakJob
	client := &http.Client{Timeout: 10 * time.Second}
	stop := time.Now().Add(*duration)

	for i, tl := range tenants {
		wg.Add(1)
		go func(ord int, tl tenantLoad) {
			defer wg.Done()
			// Deterministic per-tenant jitter: the inter-arrival times are a
			// fixed function of (seed, tenant ordinal).
			rng := rand.New(rand.NewSource(*seed + int64(ord)*1_000_003))
			period := time.Duration(float64(time.Second) / tl.rate)
			st := stats[tl.name]
			for n := 0; time.Now().Before(stop); n++ {
				spec := map[string]any{
					"type": *jobType, "tenant": tl.name, "quick": *quick,
					"seed": *seed + int64(n),
				}
				body, _ := json.Marshal(spec)
				t0 := time.Now()
				resp, err := client.Post(*url+"/jobs", "application/json", bytes.NewReader(body))
				dt := time.Since(t0)
				mu.Lock()
				st.submitted++
				st.latency += dt
				if err != nil {
					st.errors++
				} else {
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusAccepted:
						st.accepted++
						if *soak {
							var j struct {
								ID string `json:"id"`
							}
							if json.Unmarshal(data, &j) == nil && j.ID != "" {
								soakJobs = append(soakJobs, soakJob{tenant: tl.name, id: j.ID})
							}
						}
					case http.StatusOK:
						st.deduped++
					case http.StatusTooManyRequests:
						st.rate429++
					case http.StatusServiceUnavailable:
						st.refused503++
					default:
						st.errors++
					}
				}
				mu.Unlock()
				// Jittered pacing in [0.5, 1.5) periods keeps tenants from
				// phase-locking while preserving the average rate.
				time.Sleep(time.Duration((0.5 + rng.Float64()) * float64(period)))
			}
		}(i, tl)
	}
	wg.Wait()

	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %9s %9s %8s %8s %8s %7s %10s\n",
		"tenant", "submitted", "accepted", "deduped", "429", "503", "errors", "avg-submit")
	for _, n := range names {
		st := stats[n]
		avg := time.Duration(0)
		if st.submitted > 0 {
			avg = st.latency / time.Duration(st.submitted)
		}
		fmt.Printf("%-10s %9d %9d %8d %8d %8d %7d %10s\n",
			n, st.submitted, st.accepted, st.deduped, st.rate429, st.refused503, st.errors, avg.Round(time.Microsecond))
	}

	if *soak {
		soakReport(client, *url, soakJobs, *drain)
	}

	// The server's own view closes the report: depth bounded, still ready.
	resp, err := client.Get(*url + "/healthz")
	if err == nil {
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		fmt.Printf("healthz: %s\n", bytes.TrimSpace(data))
	}
}

// soakJob is one accepted submission being tracked to its terminal state.
type soakJob struct{ tenant, id string }

// terminalStates mirrors the server's JobState.Terminal set.
var terminalStates = map[string]bool{
	"succeeded": true, "failed": true, "canceled": true, "quarantined": true,
}

// soakReport polls every accepted job until terminal (or the drain bound),
// then prints per-tenant end-to-end latency percentiles from the
// server-stamped submit/done timestamps and the Jain fairness index over
// per-tenant completion counts.
func soakReport(client *http.Client, url string, jobs []soakJob, bound time.Duration) {
	fmt.Printf("soak: tracking %d accepted jobs to terminal (bound %s)\n", len(jobs), bound)
	type doneJob struct {
		State       string `json:"state"`
		SubmittedMS int64  `json:"submitted_ms"`
		DoneMS      int64  `json:"done_ms"`
	}
	latencies := map[string][]float64{}
	completed := map[string]int{}
	tenants := map[string]bool{}
	for _, j := range jobs {
		tenants[j.tenant] = true
	}
	pending := append([]soakJob(nil), jobs...)
	deadline := time.Now().Add(bound)
	for len(pending) > 0 && time.Now().Before(deadline) {
		var still []soakJob
		for _, j := range pending {
			resp, err := client.Get(url + "/jobs/" + j.id)
			if err != nil {
				still = append(still, j)
				continue
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var doc doneJob
			if json.Unmarshal(data, &doc) != nil || !terminalStates[doc.State] {
				still = append(still, j)
				continue
			}
			completed[j.tenant]++
			if doc.DoneMS >= doc.SubmittedMS {
				latencies[j.tenant] = append(latencies[j.tenant], float64(doc.DoneMS-doc.SubmittedMS))
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if n := len(pending); n > 0 {
		fmt.Printf("soak: %d jobs still not terminal at the drain bound\n", n)
	}

	names := make([]string, 0, len(tenants))
	for n := range tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %9s %9s %9s %9s %9s\n",
		"tenant", "accepted", "completed", "p50_ms", "p95_ms", "p99_ms")
	accepted := map[string]int{}
	for _, j := range jobs {
		accepted[j.tenant]++
	}
	for _, n := range names {
		lats := append([]float64(nil), latencies[n]...)
		sort.Float64s(lats)
		fmt.Printf("%-10s %9d %9d %9.1f %9.1f %9.1f\n",
			n, accepted[n], completed[n],
			rankPercentile(lats, 0.50), rankPercentile(lats, 0.95), rankPercentile(lats, 0.99))
	}
	fmt.Printf("fairness %.4f (jain index over completed jobs, %d tenants)\n",
		jainIndex(names, completed), len(names))
}

// rankPercentile is the exact nearest-rank percentile of a sorted sample set.
func rankPercentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// jainIndex is Jain's fairness index (sum x)^2 / (n * sum x^2) over the
// tenants' completion counts: 1.0 is perfectly even service, 1/n is one
// tenant taking everything. Zero when nothing completed.
func jainIndex(names []string, completed map[string]int) float64 {
	var sum, sumSq float64
	for _, n := range names {
		x := float64(completed[n])
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 || len(names) == 0 {
		return 0
	}
	return sum * sum / (float64(len(names)) * sumSq)
}
