package gnsslna

// One benchmark per reconstructed table/figure (E1-E9), regenerating the
// corresponding experiment end to end, plus micro-benchmarks of the
// numerical kernels the experiments lean on. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks use the Quick budgets; EXPERIMENTS.md records a
// full-budget run.

import (
	"runtime"
	"testing"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/experiments"
	"gnsslna/internal/extract"
	"gnsslna/internal/mathx"
	"gnsslna/internal/mna"
	"gnsslna/internal/optim"
	"gnsslna/internal/twoport"
	"gnsslna/internal/vna"
)

// benchSuite provides cached inputs so each bench iteration measures the
// experiment itself, not the shared setup.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s := experiments.NewSuite(experiments.Config{Seed: 1, Quick: true})
	if _, err := s.Dataset(); err != nil {
		b.Fatal(err)
	}
	return s
}

// designedSuite also precomputes the extraction and design.
func designedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s := benchSuite(b)
	if _, err := s.Design(); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkE1ModelComparison(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E1ModelComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ExtractionMethods(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E2ExtractionMethods(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ModelFit(b *testing.B) {
	s := benchSuite(b)
	if _, err := s.Extracted(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E3ModelFit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4GoalAttainment(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E4GoalAttainment(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5DesignFlow(b *testing.B) {
	// E5 *is* the optimization: re-run it fresh each iteration.
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Config{Seed: 1, Quick: true})
		if _, err := s.E5DesignFlow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Verification(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E6Verification(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Dispersion(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E7Dispersion(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Intermodulation(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E8Intermodulation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9Constellations(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E9Constellations(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the kernels under the experiments ---

func BenchmarkDeviceSParams(b *testing.B) {
	d := device.Golden()
	bias := device.Bias{Vgs: 0.52, Vds: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.SAt(bias, 1.575e9, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceNoiseParams(b *testing.B) {
	d := device.Golden()
	bias := device.Bias{Vgs: 0.52, Vds: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.NoiseParamsAt(bias, 1.575e9, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmplifierBandEvaluation(b *testing.B) {
	// Repeated evaluation of one design: after the first iteration every
	// call hits the evaluation memo, which is exactly the serve-worker
	// repeated-spec pattern this benchmark tracks.
	des := core.NewDesigner(core.NewBuilder(device.Golden()))
	des.Spec.NPoints = 11
	x := core.Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := des.Evaluate(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmplifierEvaluateUncached(b *testing.B) {
	// The memo-bypassed full evaluation: the honest cost of the batched
	// stamp-once/solve-many band path (in-band grid plus stability scan).
	des := core.NewDesigner(core.NewBuilder(device.Golden()))
	des.Memo = nil
	des.Spec.NPoints = 11
	x := core.Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := des.Evaluate(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmplifierMetricsBand(b *testing.B) {
	// The raw grid-batched metrics slab on a prebuilt amplifier: compiled
	// chains and hoisted device state, no designer aggregation on top.
	amp, err := core.NewBuilder(device.Golden()).Build(
		core.Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12})
	if err != nil {
		b.Fatal(err)
	}
	freqs := mathx.Linspace(1.1e9, 1.7e9, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := amp.MetricsBand(freqs, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmplifierEvaluateMemoHit(b *testing.B) {
	// The pure hit path: content hash, LRU lookup, immutable result.
	des := core.NewDesigner(core.NewBuilder(device.Golden()))
	des.Memo = core.NewEvalMemo(64)
	des.Spec.NPoints = 11
	x := core.Design{Vgs: 0.46, Vds: 3, LIn: 5.6e-9, LDegen: 0.5e-9, LOut: 2.2e-9, COut: 0.5e-12}
	// Two warm-up evaluations: the doorkeeper admits a key on its second
	// miss, so the hit path only opens after the second pass.
	for i := 0; i < 2; i++ {
		if _, err := des.Evaluate(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := des.Evaluate(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdFETExtraction(b *testing.B) {
	ds, err := vna.RunCampaign(device.Golden(), vna.DefaultCampaign(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.ColdFET(ds.ColdPinched, ds.ColdOpen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplexLUSolve16(b *testing.B) {
	n := 16
	a := mathx.NewCMatrix(n, n)
	rhs := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(float64((i*7+j*3)%11)-5, float64((i+j)%5)))
		}
		a.Add(i, i, complex(float64(n), 0))
		rhs[i] = complex(float64(i), 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mathx.SolveC(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascadeNoisyTwoPorts(b *testing.B) {
	d := device.Golden()
	tp, err := d.NoisyAt(device.Bias{Vgs: 0.52, Vds: 3}, 1.575e9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tp.Cascade(tp)
	}
}

func BenchmarkSConversionRoundTrip(b *testing.B) {
	s := twoport.Mat2{
		{complex(0.5, 0.3), complex(0.04, 0.02)},
		{complex(3.5, 1.2), complex(0.4, -0.5)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y, err := twoport.SToY(s, 50)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := twoport.YToS(y, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoalAttainImprovedAnalytic(b *testing.B) {
	obj := func(x []float64) []float64 {
		f1 := x[0]*x[0] + x[1]*x[1]
		d := x[0] - 2
		return []float64{f1, d*d + x[1]*x[1]}
	}
	goals := []optim.Goal{{Target: 0, Weight: 1}, {Target: 0, Weight: 1}}
	lo := []float64{-4, -4}
	hi := []float64{4, 4}
	for i := 0; i < b.N; i++ {
		opts := &optim.AttainOptions{Seed: int64(i + 1), GlobalEvals: 1500, PolishEvals: 900}
		if _, err := optim.GoalAttainImproved(obj, goals, lo, hi, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoToneGoertzel(b *testing.B) {
	d := device.Golden()
	bias := device.Bias{Vgs: 0.52, Vds: 3}
	cfg := vna.TwoToneConfig{F1: 1.5750e9, F2: 1.5760e9, Resolution: 500e3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vna.RunTwoTone(d, bias, 0.004, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Calibration(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E10Calibration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11TwoStage(b *testing.B) {
	s := designedSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E11TwoStage(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMAESRosenbrock(b *testing.B) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	f := func(x []float64) float64 {
		a := x[1] - x[0]*x[0]
		c := 1 - x[0]
		return 100*a*a + c*c
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optim.CMAES(f, lo, hi, &optim.CMAESOptions{Generations: 200, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel-evaluation variants (Workers = NumCPU) ---
//
// The Workers benchmarks drive the same pipelines with the evaluation
// fan-out enabled. Results are identical to the serial runs by
// construction; the benchmarks measure the wall-clock effect of the
// worker pool at the machine's full width.

func BenchmarkE2ExtractionMethodsWorkers(b *testing.B) {
	s := experiments.NewSuite(experiments.Config{Seed: 1, Quick: true, Workers: runtime.NumCPU()})
	if _, err := s.Dataset(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E2ExtractionMethods(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4GoalAttainmentWorkers(b *testing.B) {
	s := experiments.NewSuite(experiments.Config{Seed: 1, Quick: true, Workers: runtime.NumCPU()})
	if _, err := s.Design(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.E4GoalAttainment(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5DesignFlowWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.Config{Seed: 1, Quick: true, Workers: runtime.NumCPU()})
		if _, err := s.E5DesignFlow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMAESRosenbrockWorkers(b *testing.B) {
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	f := func(x []float64) float64 {
		a := x[1] - x[0]*x[0]
		c := 1 - x[0]
		return 100*a*a + c*c
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := &optim.CMAESOptions{Generations: 200, Seed: int64(i + 1), Workers: runtime.NumCPU()}
		if _, err := optim.CMAES(f, lo, hi, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCOperatingPoint(b *testing.B) {
	d := device.Golden()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := mna.NewDC()
		c.AddV("vcc", "0", 5)
		c.AddR("vcc", "gate", 47e3)
		c.AddR("gate", "0", 5.1e3)
		c.AddR("vcc", "drain", 22)
		c.AddFET(d.DC, "gate", "drain", "0")
		if _, err := c.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}
