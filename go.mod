module gnsslna

go 1.22
