// Extraction example: measure the hidden golden pHEMT with the synthetic
// VNA and DC analyzer, then fit every supported transistor model with the
// paper's three-step procedure and rank them — the workflow behind the
// model-comparison table (E1).
package main

import (
	"fmt"
	"log"

	"gnsslna/internal/device"
	"gnsslna/internal/extract"
	"gnsslna/internal/vna"
)

func main() {
	ds, err := vna.RunCampaign(device.Golden(), vna.DefaultCampaign(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d hot bias sweeps, %d-point I-V grid, 2 cold sweeps\n\n",
		len(ds.Hot), len(ds.VgsGrid)*len(ds.VdsGrid))
	cfg := extract.Config{Seed: 1, DCEvals: 8000, GlobalEvals: 3000, RefineIters: 25}
	fmt.Println("model      DC rel RMSE   S RMSE")
	for _, m := range device.AllModels() {
		res, err := extract.ThreeStep(ds, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %10.2f%%   %.4f\n", m.Name(), res.DC.RelRMSE*100, res.SRMSE)
	}
	fmt.Println("\nThe Angelov class generated the data, so it should sit at the")
	fmt.Println("fit floor; the square-law Curtice model cannot follow the bell-")
	fmt.Println("shaped transconductance and lands last.")
}
