// Multiband example: build the optimized preamplifier and grade it at every
// GNSS signal (GPS, GLONASS, Galileo, Compass/BeiDou) — the workflow behind
// the per-constellation table (E9). It demonstrates direct use of the core
// designer API rather than the one-call facade.
package main

import (
	"fmt"
	"log"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/optim"
)

func main() {
	// Design straight on the golden device (skipping extraction) to show
	// the designer API in isolation.
	designer := core.NewDesigner(core.NewBuilder(device.Golden()))
	designer.Spec.NPoints = 9
	res, err := designer.Optimize(&optim.AttainOptions{Seed: 2, GlobalEvals: 2000, PolishEvals: 1200})
	if err != nil {
		log.Fatal(err)
	}
	amp, err := designer.Builder.Build(res.Snapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized bias: Vgs=%.3f V Vds=%.2f V (Ids %.1f mA)\n\n",
		res.Snapped.Vgs, res.Snapped.Vds, amp.Ids()*1e3)
	fmt.Println("signal        f [GHz]    NF [dB]  GT [dB]  in spec")
	for _, b := range core.GNSSBands() {
		m, err := amp.MetricsAt(b.Center, 50)
		if err != nil {
			log.Fatal(err)
		}
		ok := "yes"
		if m.NFdB > designer.Spec.NFMaxDB || m.GTdB < designer.Spec.GTMinDB {
			ok = "NO"
		}
		fmt.Printf("%-12s  %.5f   %6.3f   %6.2f   %s\n", b.Name, b.Center/1e9, m.NFdB, m.GTdB, ok)
	}
}
