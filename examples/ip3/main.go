// IP3 example: drive the transistor with a two-tone signal around the GPS
// L1 band, watch the 1 dB/dB and 3 dB/dB slopes emerge from the sampled
// waveform, and locate the bias "sweet spot" where the third-order
// nonlinearity cancels — the workflow behind the intermodulation check
// (E8).
package main

import (
	"fmt"
	"log"

	"gnsslna/internal/device"
	"gnsslna/internal/vna"
)

func main() {
	d := device.Golden()
	cfg := vna.TwoToneConfig{F1: 1.5750e9, F2: 1.5760e9, Resolution: 500e3}
	bias := device.Bias{Vgs: 0.50, Vds: 3}

	fmt.Println("two-tone sweep at Vgs=0.50 V (drive per tone, output tone powers):")
	fmt.Println("drive [mV]   P(f1) [dBm]   P(2f1-f2) [dBm]")
	for _, a := range []float64{2, 4, 8, 16} {
		r, err := vna.RunTwoTone(d, bias, a*1e-3, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f   %11.2f   %15.2f\n", a, r.PFundDBm, r.PIM3DBm)
	}

	ip3, err := vna.MeasureOIP3(d, bias, []float64{0.002, 0.004, 0.008}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslopes: fundamental %.2f dB/dB, IM3 %.2f dB/dB\n", ip3.SlopeFund, ip3.SlopeIM3)
	fmt.Printf("OIP3: %.1f dBm measured, %.1f dBm from the gm power series\n",
		ip3.OIP3DBm, vna.AnalyticOIP3(d, bias, 50))

	fmt.Println("\nOIP3 versus gate bias (the linearity sweet spot):")
	for vgs := 0.40; vgs <= 0.64; vgs += 0.04 {
		b := device.Bias{Vgs: vgs, Vds: 3}
		fmt.Printf("  Vgs=%.2f V  OIP3=%.1f dBm  (Ids %.1f mA)\n",
			vgs, vna.AnalyticOIP3(d, b, 50), d.Ids(b)*1e3)
	}
}
