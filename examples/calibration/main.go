// Calibration example: a measurement campaign as it really happens — the
// VNA's test set distorts everything until a SOLT calibration (short, open,
// load at both ports plus a through) is solved and applied. The example
// measures the golden transistor raw and corrected, then extracts noise
// parameters with a source-pull bench and Lane's method.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"gnsslna/internal/device"
	"gnsslna/internal/extract"
	"gnsslna/internal/mathx"
	"gnsslna/internal/twoport"
	"gnsslna/internal/vna"
)

func main() {
	d := device.Golden()
	bias := device.Bias{Vgs: 0.52, Vds: 3}
	freqs := mathx.Linspace(1.1e9, 1.7e9, 4)

	chain := vna.NewRawChain(42)
	raw, err := chain.MeasureRaw(freqs, func(f float64) (twoport.Mat2, error) {
		return d.SAt(bias, f, 50)
	})
	if err != nil {
		log.Fatal(err)
	}
	corrected, err := chain.MeasureDeviceCalibrated(d, bias, freqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("f [GHz]   |S21| true   |S21| raw   |S21| corrected")
	for i, f := range freqs {
		truth, err := d.SAt(bias, f, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.3f   %10.3f   %9.3f   %15.3f\n",
			f/1e9, cmplx.Abs(truth[1][0]), cmplx.Abs(raw.S[i][1][0]),
			cmplx.Abs(corrected.S[i][1][0]))
	}

	// Source-pull noise-parameter extraction at L1.
	tp, err := d.NoisyAt(bias, 1.575e9)
	if err != nil {
		log.Fatal(err)
	}
	bench := &vna.SourcePullBench{SigmaDB: 0.05, Seed: 7}
	pts, err := bench.Measure(tp, vna.DefaultTunerStates())
	if err != nil {
		log.Fatal(err)
	}
	fitted, err := extract.FitNoiseParams(pts, 50)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := tp.NoiseParams(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnoise parameters at 1.575 GHz (Lane fit from %d tuner states, 0.05 dB meter):\n", len(pts))
	fmt.Printf("  Fmin: fitted %.3f dB, true %.3f dB\n", fitted.FminDB(), truth.FminDB())
	fmt.Printf("  Rn:   fitted %.2f ohm, true %.2f ohm\n", fitted.Rn, truth.Rn)
	fmt.Printf("  Gopt: fitted %.3f@%.0f, true %.3f@%.0f (mag@deg)\n",
		cmplx.Abs(fitted.GammaOpt), cmplx.Phase(fitted.GammaOpt)*180/3.14159265,
		cmplx.Abs(truth.GammaOpt), cmplx.Phase(truth.GammaOpt)*180/3.14159265)
}
