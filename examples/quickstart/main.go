// Quickstart: design a multi-constellation GNSS antenna preamplifier in
// one call and print the result. This is the five-line path through the
// library: the facade runs the synthetic measurement campaign, the
// three-step model extraction and the improved goal-attainment
// optimization, and returns the buildable design.
package main

import (
	"fmt"
	"log"

	"gnsslna"
)

func main() {
	rep, err := gnsslna.DesignLNA(gnsslna.Options{Seed: 1, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GNSS preamplifier design (all goals met when gamma <= 0):")
	fmt.Printf("  gamma        %.3f\n", rep.Gamma)
	fmt.Printf("  bias         Vgs=%.3f V, Vds=%.2f V, Ids=%.1f mA (%.0f mW)\n",
		rep.Snapped.Vgs, rep.Snapped.Vds, rep.IdsA*1e3, rep.PdcW*1e3)
	fmt.Printf("  elements     Lin=%.1f nH, Ldeg=%.2f nH, Lout=%.1f nH, Cout=%.2f pF\n",
		rep.Snapped.LIn*1e9, rep.Snapped.LDegen*1e9, rep.Snapped.LOut*1e9, rep.Snapped.COut*1e12)
	fmt.Printf("  in-band      NF <= %.3f dB, GT >= %.2f dB\n", rep.WorstNFdB, rep.MinGTdB)
	fmt.Printf("  stability    margin %.3f (unconditional when > 0)\n", rep.StabMargin)
}
