// Distributed example: design the preamplifier's matching networks from
// microstrip line sections and open stubs attached through T-junctions —
// the transmission-line element family whose dispersive equations are the
// paper's third contribution — and compare the result with the
// lumped-element variant and with an analytic single-stub seed.
package main

import (
	"fmt"
	"log"

	"gnsslna/internal/core"
	"gnsslna/internal/device"
	"gnsslna/internal/match"
	"gnsslna/internal/optim"
)

func main() {
	d := core.NewDesigner(core.NewBuilder(device.Golden()))
	d.Spec.NPoints = 9

	// An analytic seed: the single-stub match of the bare device input at
	// band center shows where the optimizer will land.
	bias := device.Bias{Vgs: 0.46, Vds: 3}
	s, err := device.Golden().SAt(bias, 1.4e9, 50)
	if err != nil {
		log.Fatal(err)
	}
	zin := 50 * (1 + s[0][0]) / (1 - s[0][0])
	stub, err := match.DesignSingleStub(zin, 50, true)
	if err != nil {
		log.Fatal(err)
	}
	ql, err := d.Builder.QuarterWaveLength(1.4e9)
	if err != nil {
		log.Fatal(err)
	}
	toMM := func(rad float64) float64 { return rad / (3.14159265 / 2) * ql * 1e3 }
	fmt.Printf("analytic single-stub seed for the device input (1.4 GHz):\n")
	fmt.Printf("  line %.1f mm then open stub %.1f mm (quarter wave = %.1f mm)\n\n",
		toMM(stub.DistRad), toMM(stub.StubRad), ql*1e3)

	fmt.Println("optimizing the distributed (line + stub) topology...")
	res, err := d.OptimizeDistributed(&optim.AttainOptions{Seed: 4, GlobalEvals: 2500, PolishEvals: 1500})
	if err != nil {
		log.Fatal(err)
	}
	x := res.Design
	fmt.Printf("  gamma = %.3f\n", res.Gamma)
	fmt.Printf("  bias: Vgs=%.3f V Vds=%.2f V; degeneration %.2f nH\n", x.Vgs, x.Vds, x.LDegen*1e9)
	fmt.Printf("  input: %.1f mm line + %.1f mm open stub\n", x.LenIn*1e3, x.StubIn*1e3)
	fmt.Printf("  output: %.1f mm line + %.1f mm open stub\n", x.LenOut*1e3, x.StubOut*1e3)
	e := res.Eval
	fmt.Printf("  band: NFmax=%.3f dB GTmin=%.2f dB S11<=%.1f dB stab=%.3f\n\n",
		e.WorstNFdB, e.MinGTdB, e.WorstS11dB, e.StabMargin)

	fmt.Println("lumped-element variant for comparison...")
	lres, err := d.Optimize(&optim.AttainOptions{Seed: 4, GlobalEvals: 2500, PolishEvals: 1500})
	if err != nil {
		log.Fatal(err)
	}
	le := lres.Eval
	fmt.Printf("  band: NFmax=%.3f dB GTmin=%.2f dB S11<=%.1f dB stab=%.3f\n",
		le.WorstNFdB, le.MinGTdB, le.WorstS11dB, le.StabMargin)
	fmt.Println("\nThe distributed variant trades a little noise (line loss ahead")
	fmt.Println("of the transistor) for free-form impedances and no chip-inductor")
	fmt.Println("tolerances; the paper's amplifier mixes both families.")
}
